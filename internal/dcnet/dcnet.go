// Package dcnet implements Phase 1 of the paper: the dining-cryptographers
// network of Fig. 4. A group of g ∈ [k, 2k−1] members runs synchronized
// rounds of three pairwise XOR exchanges; any single member can transmit
// one anonymous message per round, collisions are detected by CRC and
// resolved with randomized backoff, and the group recovers
//
//	T ⊕ S = M ⊕ m_j
//
// at member j, where M is the XOR of all contributions — so with a unique
// sender every other member recovers the message and the sender recovers 0
// (its success signal).
//
// Two round modes exist. ModeFixed sends a full-size slot every round.
// ModeAnnounce implements the §V-A optimization: idle rounds shrink to an
// 8-byte announcement slot ("an integer representing the length of the
// next message … protected by CRC bits"); a valid announcement reserves
// the next round as a data round of exactly the announced size.
//
// The stronger-attacker extension of §V-C is available as Policy settings:
// PolicyBlame runs a von-Ahn-style commitment/reveal protocol that
// identifies a disruptor after repeated collisions; PolicyDissolve simply
// reports the group as burned so the membership layer can re-form it.
package dcnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"time"

	"repro/internal/crypto"
	"repro/internal/proto"
	"repro/internal/relchan"
)

// Mode selects the round layout.
type Mode int

// Round modes.
const (
	// ModeFixed sends a fixed-size slot every round.
	ModeFixed Mode = iota + 1
	// ModeAnnounce alternates 8-byte announcement rounds with exact-size
	// data rounds (§V-A optimization).
	ModeAnnounce
)

// Policy selects the reaction to repeated round failures (§V-C).
type Policy int

// Failure policies.
const (
	// PolicyNone ignores repeated failures (pure honest-but-curious).
	PolicyNone Policy = iota + 1
	// PolicyDissolve reports the group as burned after the threshold.
	PolicyDissolve
	// PolicyBlame runs the commitment/reveal protocol to identify the
	// disruptor, then reports it. Adds one CommitMsg per peer per round.
	PolicyBlame
)

// Config parametrizes one group member.
type Config struct {
	// Self is this member's node ID; it must appear in Members.
	Self proto.NodeID
	// Members is the full group, in any order (sorted internally).
	Members []proto.NodeID
	// Mode selects fixed or announce rounds (default ModeAnnounce).
	Mode Mode
	// SlotSize is the fixed-mode slot size in bytes, including the
	// 8-byte framing overhead (default 256).
	SlotSize int
	// MaxPayload bounds a single anonymous message (default SlotSize−8
	// in fixed mode, 64 KiB in announce mode).
	MaxPayload int
	// Interval is the nominal spacing of round starts (default 2s),
	// "chosen suitably for the expected activity in the network" (§V-A).
	Interval time.Duration
	// MaxRounds, when positive, stops the member from starting any round
	// beyond this number. Because every member counts rounds identically,
	// the group's total message and byte cost becomes a deterministic
	// function of MaxRounds — the property the differential parity
	// harness relies on to compare a wall-clock run against a virtual-time
	// simulation without "however many idle rounds happened to fit"
	// noise. Zero (the default) keeps rounds unbounded.
	MaxRounds int
	// Timeout bounds a stalled round. Without failover (EvictAfter = 0)
	// it aborts the group (crashed member); with failover it abandons
	// the round and charges silent peers a miss. Zero disables — except
	// under failover, where it defaults to 1.5× Interval (off the round
	// grid, so abandon and round-start events never tie).
	Timeout time.Duration
	// RetransmitTimeout enables the reliability layer: every exchange
	// message is tracked until acked and retransmitted after this long,
	// up to RetryBudget times. It must exceed the worst-case network
	// round trip (data + ack), or in-flight messages trigger spurious
	// retransmissions. Zero disables (the pre-reliability protocol,
	// byte-for-byte).
	RetransmitTimeout time.Duration
	// RetryBudget bounds retransmissions per message (0: track acks but
	// never retransmit — the round then fails deterministically on any
	// loss, which the policy machinery handles).
	RetryBudget int
	// EvictAfter enables failover: a peer completely silent for this
	// many consecutive abandoned rounds is evicted and the group
	// re-keys around the survivors. Zero disables (a stalled round
	// dissolves the group via Timeout, as before).
	EvictAfter int
	// MinMembers is the failover floor (default 2): an eviction that
	// would shrink the group below it dissolves the group instead —
	// the caller's anonymity budget, typically the paper's k.
	MinMembers int
	// Policy is the failure reaction (default PolicyDissolve).
	Policy Policy
	// FailureThreshold is the number of consecutive failed rounds that
	// triggers the policy (default 4).
	FailureThreshold int
	// MaxBackoffExp caps the collision backoff window at 2^exp rounds
	// (default 6).
	MaxBackoffExp int
	// Channels optionally provides pairwise AEAD channels keyed by peer;
	// when set, shares are encrypted in transit.
	Channels map[proto.NodeID]*crypto.SecureChannel
	// Disrupt makes this member contribute random garbage every round —
	// an attacker for experiments (E11); it still follows the message
	// flow (honest-but-curious form, malicious content).
	Disrupt bool

	// OnDeliver receives each recovered anonymous message. Duplicates
	// are possible across retries; callers dedup by content.
	OnDeliver func(ctx proto.Context, round uint32, payload []byte)
	// OnSendResult reports whether a queued payload went through.
	OnSendResult func(ctx proto.Context, payload []byte, ok bool)
	// OnBlame reports an identified disruptor (PolicyBlame).
	OnBlame func(ctx proto.Context, culprit proto.NodeID)
	// OnEvict reports a failover eviction with the surviving
	// membership — the hook that notifies the directory/manager layer.
	OnEvict func(ctx proto.Context, evicted proto.NodeID, remaining []proto.NodeID)
	// OnDissolve reports that the group burned (policy or timeout).
	OnDissolve func(ctx proto.Context, reason string)
}

func (c *Config) applyDefaults() error {
	if c.Mode == 0 {
		c.Mode = ModeAnnounce
	}
	if c.SlotSize == 0 {
		c.SlotSize = 256
	}
	if c.SlotSize < SlotOverhead+1 {
		return fmt.Errorf("dcnet: SlotSize %d below minimum %d", c.SlotSize, SlotOverhead+1)
	}
	if c.MaxPayload == 0 {
		if c.Mode == ModeFixed {
			c.MaxPayload = c.SlotSize - SlotOverhead
		} else {
			c.MaxPayload = 64 << 10
		}
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Policy == 0 {
		c.Policy = PolicyDissolve
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 4
	}
	if c.MaxBackoffExp <= 0 {
		c.MaxBackoffExp = 6
	}
	if c.RetransmitTimeout < 0 || c.RetryBudget < 0 || c.EvictAfter < 0 {
		return fmt.Errorf("dcnet: negative reliability parameter")
	}
	if c.EvictAfter > 0 && c.Timeout <= 0 {
		c.Timeout = c.Interval + c.Interval/2
	}
	if c.MinMembers < 2 {
		c.MinMembers = 2
	}
	return nil
}

// Queue/lifecycle errors.
var (
	// ErrStopped indicates the member dissolved or was stopped.
	ErrStopped = errors.New("dcnet: member stopped")
	// ErrNotMember indicates Self was missing from Members.
	ErrNotMember = errors.New("dcnet: Self not in Members")
	// ErrGroupTooSmall indicates fewer than two members.
	ErrGroupTooSmall = errors.New("dcnet: group needs at least 2 members")
)

// roundKind is the layout of one round.
type roundKind struct {
	announce bool
	dataLen  int // valid when !announce in ModeAnnounce
}

// roundState tracks one round's exchanges.
type roundState struct {
	number  uint32
	kind    roundKind
	started bool
	slot    int // slot size in bytes

	sent       bool   // I contributed a non-zero slot
	myContrib  []byte // my slot contribution (zeros if idle)
	myShares   [][]byte
	mySalts    [][]byte
	gotShares  map[proto.NodeID][]byte
	gotSPart   map[proto.NodeID][]byte
	gotTPart   map[proto.NodeID][]byte
	gotCommits map[proto.NodeID][][32]byte
	gotReveals map[proto.NodeID]*RevealMsg
	// heard marks any per-round activity (data or ack) per peer — the
	// failover layer's liveness signal (lazily allocated).
	heard map[proto.NodeID]bool

	s, t       []byte
	sSent      bool
	tSent      bool
	complete   bool
	failed     bool
	timeoutID  proto.TimerID
	hasTimeout bool
}

// Timer payloads.
type roundTimer struct{ round uint32 }
type timeoutTimer struct{ round uint32 }

// Member is one node's participation in one DC-net group. It is driven
// by a proto.Context via Start/HandleMessage/HandleTimer and is not safe
// for concurrent use (runtimes serialize handler calls).
type Member struct {
	cfg     Config
	members []proto.NodeID // sorted, includes self
	peers   []proto.NodeID // sorted, excludes self

	rounds    map[uint32]*roundState
	nextKind  roundKind
	reserved  bool // I won the announcement; next data round is mine
	current   uint32
	deferred  uint32 // round whose timer fired before current completed
	startedAt time.Duration
	running   bool
	stopped   bool

	queue   [][]byte
	retries int
	backoff int

	consecFailures int
	blameRound     uint32 // nonzero while a blame phase is active
	blamed         map[proto.NodeID]bool

	// Reliability layer: the reusable ack/retransmit channel, bound to
	// this package's (round, kind) identity and ack encodings.
	rel *relchan.Channel
	// Failover layer: consecutive totally-silent abandoned rounds per
	// peer, and the membership epoch (bumped on every eviction).
	missed map[proto.NodeID]int
	epoch  int

	// scratch recycles slot-sized buffers (accumulators, recovered
	// values) across rounds. Buffers that travel inside messages —
	// shares and partials — are never pooled: in simulation the receiver
	// holds them by reference until its own round gc.
	scratch bufPool

	// Stats, exposed for experiments. Retransmits/Nacks live on the
	// channel; see the accessor methods in reliable.go.
	RoundsCompleted int
	Collisions      int
	Delivered       int
	BlamePhases     int
	RoundsAbandoned int
	Evictions       int
}

// bufPool is a small free list of byte buffers keyed by capacity.
type bufPool struct{ bufs [][]byte }

// get returns a zeroed buffer of length n, reusing a pooled one when its
// capacity suffices.
func (p *bufPool) get(n int) []byte {
	for i := len(p.bufs) - 1; i >= 0; i-- {
		if cap(p.bufs[i]) >= n {
			b := p.bufs[i][:n]
			last := len(p.bufs) - 1
			p.bufs[i] = p.bufs[last]
			p.bufs[last] = nil
			p.bufs = p.bufs[:last]
			clear(b)
			return b
		}
	}
	return make([]byte, n)
}

// put recycles buffers; nil entries are ignored.
func (p *bufPool) put(bufs ...[]byte) {
	for _, b := range bufs {
		if cap(b) > 0 {
			p.bufs = append(p.bufs, b)
		}
	}
}

// NewMember validates the configuration and returns a Member.
func NewMember(cfg Config) (*Member, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if len(cfg.Members) < 2 {
		return nil, ErrGroupTooSmall
	}
	members := slices.Clone(cfg.Members)
	slices.Sort(members)
	members = slices.Compact(members)
	if !slices.Contains(members, cfg.Self) {
		return nil, ErrNotMember
	}
	peers := make([]proto.NodeID, 0, len(members)-1)
	for _, id := range members {
		if id != cfg.Self {
			peers = append(peers, id)
		}
	}
	m := &Member{
		cfg:      cfg,
		members:  members,
		peers:    peers,
		rounds:   make(map[uint32]*roundState),
		nextKind: initialKind(cfg.Mode),
		blamed:   make(map[proto.NodeID]bool),
		missed:   make(map[proto.NodeID]int),
		rel:      newRelChannel(&cfg),
	}
	return m, nil
}

func initialKind(mode Mode) roundKind {
	if mode == ModeAnnounce {
		return roundKind{announce: true}
	}
	return roundKind{}
}

// GroupSize returns the number of members including self.
func (m *Member) GroupSize() int { return len(m.members) }

// Members returns the sorted group membership.
func (m *Member) Members() []proto.NodeID { return slices.Clone(m.members) }

// Pending returns the number of queued outbound payloads.
func (m *Member) Pending() int { return len(m.queue) }

// Epoch returns the membership epoch: 0 at formation, incremented by
// every failover eviction (the "re-key" counter).
func (m *Member) Epoch() int { return m.epoch }

// DrainQueue removes and returns the queued outbound payloads — the
// hook a dissolving group's owner uses to re-route undelivered traffic
// (e.g. the composed protocol's direct Phase-2 injection fallback).
func (m *Member) DrainQueue() [][]byte {
	q := m.queue
	m.queue = nil
	return q
}

// Stopped reports whether the member has dissolved or been stopped.
func (m *Member) Stopped() bool { return m.stopped }

// Start begins round scheduling. Call once from the handler's Init.
func (m *Member) Start(ctx proto.Context) {
	if m.running || m.stopped {
		return
	}
	m.running = true
	m.startedAt = ctx.Now()
	m.scheduleRound(ctx, 1)
}

// Stop permanently halts participation.
func (m *Member) Stop() {
	m.stopped = true
	m.running = false
	m.rel.Stop()
}

// Queue submits a payload for anonymous transmission. It will be sent in
// the next free slot, possibly after collisions and backoff.
func (m *Member) Queue(payload []byte) error {
	if m.stopped {
		return ErrStopped
	}
	if len(payload) == 0 {
		return errors.New("dcnet: empty payload")
	}
	if len(payload) > m.cfg.MaxPayload {
		return fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(payload), m.cfg.MaxPayload)
	}
	m.queue = append(m.queue, slices.Clone(payload))
	return nil
}

func (m *Member) scheduleRound(ctx proto.Context, round uint32) {
	nominal := m.startedAt + time.Duration(round)*m.cfg.Interval
	delay := nominal - ctx.Now()
	ctx.SetTimer(delay, roundTimer{round: round})
}

// HandleTimer processes this package's timers; it reports whether the
// payload belonged to it.
func (m *Member) HandleTimer(ctx proto.Context, payload any) bool {
	switch t := payload.(type) {
	case roundTimer:
		if m.stopped {
			return true
		}
		if t.round > 1 {
			if prev := m.rounds[t.round-1]; prev != nil && !prev.complete {
				// Previous round still in flight: start as soon as it
				// finishes to preserve announce/data alternation — and
				// nack the peers it is still waiting on, so a dropped
				// message is re-pulled without waiting out the sender's
				// retransmit timeout.
				m.deferred = t.round
				m.nackMissing(ctx, prev)
				return true
			}
		}
		m.startRound(ctx, t.round)
		return true
	case timeoutTimer:
		if m.stopped {
			return true
		}
		rs := m.rounds[t.round]
		if rs != nil && !rs.complete {
			if m.failover() {
				m.abandonRound(ctx, rs)
			} else {
				m.dissolve(ctx, fmt.Sprintf("round %d timed out", t.round))
			}
		}
		return true
	default:
		return m.rel.HandleTimer(ctx, payload)
	}
}

// HandleMessage processes DC-net messages; it reports whether the message
// was consumed.
func (m *Member) HandleMessage(ctx proto.Context, from proto.NodeID, msg proto.Message) bool {
	switch mm := msg.(type) {
	case *ShareMsg:
		m.onShare(ctx, from, mm)
	case *SPartialMsg:
		m.onSPartial(ctx, from, mm)
	case *TPartialMsg:
		m.onTPartial(ctx, from, mm)
	case *CommitMsg:
		m.onCommit(ctx, from, mm)
	case *RevealMsg:
		m.onReveal(ctx, from, mm)
	case *AckMsg:
		m.onAck(ctx, from, mm)
	case *NackMsg:
		m.onNack(ctx, from, mm)
	default:
		return false
	}
	return true
}

func (m *Member) isPeer(id proto.NodeID) bool { return slices.Contains(m.peers, id) }

func (m *Member) round(n uint32) *roundState {
	rs := m.rounds[n]
	if rs == nil {
		rs = &roundState{
			number:     n,
			gotShares:  make(map[proto.NodeID][]byte),
			gotSPart:   make(map[proto.NodeID][]byte),
			gotTPart:   make(map[proto.NodeID][]byte),
			gotCommits: make(map[proto.NodeID][][32]byte),
			gotReveals: make(map[proto.NodeID]*RevealMsg),
		}
		m.rounds[n] = rs
	}
	return rs
}

// slotSizeFor resolves the slot size of the upcoming round.
func (m *Member) slotSizeFor(kind roundKind) int {
	if m.cfg.Mode == ModeFixed {
		return m.cfg.SlotSize
	}
	if kind.announce {
		return AnnounceSlotSize
	}
	return kind.dataLen
}

// wantsAnnounce reports whether this member should bid in an announce
// round (has traffic and is not backing off).
func (m *Member) wantsAnnounce() bool {
	return len(m.queue) > 0 && m.backoff == 0
}

func (m *Member) startRound(ctx proto.Context, n uint32) {
	if m.cfg.MaxRounds > 0 && n > uint32(m.cfg.MaxRounds) {
		return
	}
	rs := m.round(n)
	if rs.started {
		return
	}
	rs.started = true
	rs.kind = m.nextKind
	rs.slot = m.slotSizeFor(rs.kind)
	m.current = n

	// Decide contribution.
	contrib := m.scratch.get(rs.slot)
	switch {
	case m.cfg.Disrupt:
		// Attacker: random garbage every round (liveness attack, §V-C).
		fillRandom(ctx, contrib)
		rs.sent = true
	case m.cfg.Mode == ModeFixed:
		if len(m.queue) > 0 {
			if m.backoff > 0 {
				m.backoff--
			} else if packSlotInto(contrib, m.queue[0]) == nil {
				rs.sent = true
			}
		}
	case rs.kind.announce:
		if m.wantsAnnounce() {
			dataLen := len(m.queue[0]) + crypto.CRCSize
			copy(contrib, packAnnounce(uint32(dataLen)))
			rs.sent = true
		} else if len(m.queue) > 0 && m.backoff > 0 {
			m.backoff--
		}
	default: // data round
		if m.reserved && len(m.queue) > 0 {
			data := crypto.AppendCRC(m.queue[0])
			if len(data) == rs.slot {
				copy(contrib, data)
				rs.sent = true
			}
		}
	}
	rs.myContrib = contrib

	// Split the contribution into len(peers) shares XOR-ing to it. The
	// shares travel inside ShareMsgs, so they are carved out of one slab
	// allocation rather than pooled; the last share accumulates the
	// others in place, so no separate scratch accumulator is needed.
	rs.myShares = make([][]byte, len(m.peers))
	slab := make([]byte, len(m.peers)*rs.slot)
	last := slab[(len(m.peers)-1)*rs.slot:]
	for i := 0; i < len(m.peers)-1; i++ {
		sh := slab[i*rs.slot : (i+1)*rs.slot]
		fillRandom(ctx, sh)
		rs.myShares[i] = sh
		crypto.XORBytes(last, sh)
	}
	crypto.XORBytes(last, contrib)
	rs.myShares[len(m.peers)-1] = last

	// Blame mode: commit to the shares before sending them.
	if m.cfg.Policy == PolicyBlame {
		rs.mySalts = make([][]byte, len(m.peers))
		saltSlab := make([]byte, len(m.peers)*crypto.SaltSize)
		digests := make([][32]byte, len(m.peers))
		for i := range m.peers {
			salt := saltSlab[i*crypto.SaltSize : (i+1)*crypto.SaltSize]
			fillRandom(ctx, salt)
			rs.mySalts[i] = salt
			digests[i] = crypto.Commit(rs.myShares[i], salt)
		}
		commit := &CommitMsg{Round: n, Digests: digests}
		for _, p := range m.peers {
			m.sendReliable(ctx, p, commit, n, KindCommit)
		}
	}

	// Step 2: send share rᵢ to gᵢ.
	for i, p := range m.peers {
		data := rs.myShares[i]
		if ch := m.cfg.Channels[p]; ch != nil {
			sealed, err := ch.Seal(data, shareAAD(n))
			if err != nil {
				m.dissolve(ctx, fmt.Sprintf("sealing share: %v", err))
				return
			}
			data = sealed
		}
		m.sendReliable(ctx, p, &ShareMsg{Round: n, Data: data}, n, KindShare)
	}

	if m.cfg.Timeout > 0 {
		rs.timeoutID = ctx.SetTimer(m.cfg.Timeout, timeoutTimer{round: n})
		rs.hasTimeout = true
	}
	m.scheduleRound(ctx, n+1)
	m.tryAdvance(ctx, rs)
}

func shareAAD(round uint32) []byte {
	return []byte{byte(round), byte(round >> 8), byte(round >> 16), byte(round >> 24), 0x01}
}

// fillRandom fills b from the node's deterministic random source, eight
// bytes per PCG step — share splitting draws a full slot of randomness
// per peer per round, so the word-wise fill is ~8× cheaper than the
// byte-at-a-time loop it replaced. (The change redefines the consumed
// random stream; the recorded experiment tables were refreshed with it.)
// Real deployments seed the runtime with crypto/rand-derived entropy.
func fillRandom(ctx proto.Context, b []byte) {
	rng := ctx.Rand()
	i := 0
	for ; i+8 <= len(b); i += 8 {
		binary.LittleEndian.PutUint64(b[i:], rng.Uint64())
	}
	if i < len(b) {
		v := rng.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

func (m *Member) onShare(ctx proto.Context, from proto.NodeID, msg *ShareMsg) {
	if m.stopped || !m.isPeer(from) {
		return
	}
	m.ackIncoming(ctx, from, msg.Round, KindShare)
	rs := m.round(msg.Round)
	if _, dup := rs.gotShares[from]; dup {
		return
	}
	data := msg.Data
	if ch := m.cfg.Channels[from]; ch != nil {
		pt, err := ch.Open(data, shareAAD(msg.Round))
		if err != nil {
			m.dissolve(ctx, fmt.Sprintf("share from %d failed auth: %v", from, err))
			return
		}
		data = pt
	}
	rs.gotShares[from] = data
	m.tryAdvance(ctx, rs)
}

func (m *Member) onSPartial(ctx proto.Context, from proto.NodeID, msg *SPartialMsg) {
	if m.stopped || !m.isPeer(from) {
		return
	}
	m.ackIncoming(ctx, from, msg.Round, KindSPartial)
	rs := m.round(msg.Round)
	if _, dup := rs.gotSPart[from]; dup {
		return
	}
	rs.gotSPart[from] = msg.Data
	m.tryAdvance(ctx, rs)
}

func (m *Member) onTPartial(ctx proto.Context, from proto.NodeID, msg *TPartialMsg) {
	if m.stopped || !m.isPeer(from) {
		return
	}
	m.ackIncoming(ctx, from, msg.Round, KindTPartial)
	rs := m.round(msg.Round)
	if _, dup := rs.gotTPart[from]; dup {
		return
	}
	rs.gotTPart[from] = msg.Data
	m.tryAdvance(ctx, rs)
}

// tryAdvance drives the round state machine as inputs arrive. Steps 3–9
// of Fig. 4.
func (m *Member) tryAdvance(ctx proto.Context, rs *roundState) {
	if !rs.started || rs.complete || m.stopped {
		return
	}
	n := len(m.peers)
	// Step 4: S = ⊕ sᵢ once all shares are in; step 5: send S ⊕ sᵢ.
	// The per-peer partials travel inside messages, so they come from one
	// slab; the accumulator is pooled scratch recycled at round gc.
	if !rs.sSent && len(rs.gotShares) == n && m.sizesOK(rs, rs.gotShares) {
		rs.s = m.scratch.get(rs.slot)
		for _, sh := range rs.gotShares {
			crypto.XORBytes(rs.s, sh)
		}
		outs := make([]byte, n*rs.slot)
		for i, p := range m.peers {
			out := outs[i*rs.slot : (i+1)*rs.slot]
			copy(out, rs.s)
			crypto.XORBytes(out, rs.gotShares[p])
			m.sendReliable(ctx, p, &SPartialMsg{Round: rs.number, Data: out}, rs.number, KindSPartial)
		}
		rs.sSent = true
	}
	// Step 7: T = ⊕ tᵢ; step 8: send T ⊕ tᵢ.
	if rs.sSent && !rs.tSent && len(rs.gotSPart) == n && m.sizesOK(rs, rs.gotSPart) {
		rs.t = m.scratch.get(rs.slot)
		for _, sp := range rs.gotSPart {
			crypto.XORBytes(rs.t, sp)
		}
		outs := make([]byte, n*rs.slot)
		for i, p := range m.peers {
			out := outs[i*rs.slot : (i+1)*rs.slot]
			copy(out, rs.t)
			crypto.XORBytes(out, rs.gotSPart[p])
			m.sendReliable(ctx, p, &TPartialMsg{Round: rs.number, Data: out}, rs.number, KindTPartial)
		}
		rs.tSent = true
	}
	// Step 9: recover m = T ⊕ S once the final exchange closes.
	if rs.tSent && !rs.complete && len(rs.gotTPart) == n && m.sizesOK(rs, rs.gotTPart) {
		rs.complete = true
		if rs.hasTimeout {
			ctx.CancelTimer(rs.timeoutID)
		}
		recovered := m.scratch.get(rs.slot)
		copy(recovered, rs.t)
		crypto.XORBytes(recovered, rs.s)
		m.finishRound(ctx, rs, recovered)
		m.scratch.put(recovered)
	}
}

// sizesOK verifies all collected buffers match the round's slot size.
func (m *Member) sizesOK(rs *roundState, got map[proto.NodeID][]byte) bool {
	for _, b := range got {
		if len(b) != rs.slot {
			return false
		}
	}
	return true
}

// finishRound interprets the recovered value, updates collision and
// policy state, and rolls the round sequence forward.
func (m *Member) finishRound(ctx proto.Context, rs *roundState, recovered []byte) {
	m.RoundsCompleted++
	if m.failover() {
		// A round only completes when every peer's inputs arrived:
		// everyone is demonstrably alive, so silence streaks reset.
		clear(m.missed)
	}

	failed := false
	nextKind := initialKind(m.cfg.Mode)
	wasReserved := m.reserved
	m.reserved = false

	switch {
	case m.cfg.Mode == ModeFixed:
		failed = m.finishFixed(ctx, rs, recovered)
	case rs.kind.announce:
		failed, nextKind = m.finishAnnounce(ctx, rs, recovered)
	default:
		failed = m.finishData(ctx, rs, recovered, wasReserved)
	}
	if m.cfg.Mode == ModeAnnounce {
		m.nextKind = nextKind
	}

	if failed {
		rs.failed = true
		m.consecFailures++
		m.Collisions++
	} else {
		m.consecFailures = 0
	}

	if m.consecFailures >= m.cfg.FailureThreshold {
		m.consecFailures = 0
		switch m.cfg.Policy {
		case PolicyDissolve:
			m.dissolve(ctx, fmt.Sprintf("%d consecutive failed rounds", m.cfg.FailureThreshold))
			return
		case PolicyBlame:
			m.startBlame(ctx, rs.number)
		}
	}

	m.gc(rs.number)
	if m.deferred == rs.number+1 {
		next := m.deferred
		m.deferred = 0
		m.startRound(ctx, next)
	}
}

// finishFixed handles a fixed-mode round outcome; reports failure.
func (m *Member) finishFixed(ctx proto.Context, rs *roundState, recovered []byte) bool {
	if rs.sent && !m.cfg.Disrupt {
		if isZeroSlot(recovered) {
			m.sendSucceeded(ctx)
			return false
		}
		// Collision: if exactly one other member sent, their message is
		// recoverable here (M ⊕ m_j); deliver it, then back off and retry.
		if payload, ok := unpackSlot(recovered); ok {
			m.deliver(ctx, rs.number, payload)
		}
		m.sendFailed(ctx)
		return true
	}
	if isZeroSlot(recovered) {
		return false // idle round
	}
	if payload, ok := unpackSlot(recovered); ok {
		m.deliver(ctx, rs.number, payload)
		return false
	}
	return true // collision garbage
}

// finishAnnounce handles an announcement round; returns (failed, next kind).
func (m *Member) finishAnnounce(ctx proto.Context, rs *roundState, recovered []byte) (bool, roundKind) {
	if rs.sent && !m.cfg.Disrupt {
		if isZeroSlot(recovered) {
			// My announcement went through alone: the next round is my
			// data round.
			dataLen := len(m.queue[0]) + crypto.CRCSize
			m.reserved = true
			return false, roundKind{dataLen: dataLen}
		}
		m.sendFailed(ctx)
		return true, roundKind{announce: true}
	}
	if isZeroSlot(recovered) {
		return false, roundKind{announce: true}
	}
	if l, ok := unpackAnnounce(recovered); ok && l > 0 && int(l) <= m.cfg.MaxPayload+crypto.CRCSize {
		return false, roundKind{dataLen: int(l)}
	}
	return true, roundKind{announce: true}
}

// finishData handles a data round; reports failure.
func (m *Member) finishData(ctx proto.Context, rs *roundState, recovered []byte, mine bool) bool {
	if mine && rs.sent && !m.cfg.Disrupt {
		if isZeroSlot(recovered) {
			m.sendSucceeded(ctx)
			return false
		}
		m.sendFailed(ctx)
		return true
	}
	if isZeroSlot(recovered) {
		// Reserved sender went silent; not a collision, just wasted.
		return false
	}
	if payload, ok := crypto.CheckCRC(recovered); ok {
		m.deliver(ctx, rs.number, payload)
		return false
	}
	return true
}

func (m *Member) deliver(ctx proto.Context, round uint32, payload []byte) {
	m.Delivered++
	if m.cfg.OnDeliver != nil {
		m.cfg.OnDeliver(ctx, round, slices.Clone(payload))
	}
}

func (m *Member) sendSucceeded(ctx proto.Context) {
	payload := m.queue[0]
	m.queue = m.queue[1:]
	m.retries = 0
	m.backoff = 0
	if m.cfg.OnSendResult != nil {
		m.cfg.OnSendResult(ctx, payload, true)
	}
}

func (m *Member) sendFailed(ctx proto.Context) {
	m.retries++
	exp := m.retries
	if exp > m.cfg.MaxBackoffExp {
		exp = m.cfg.MaxBackoffExp
	}
	// Uniform backoff over [0, 2^exp) eligible rounds.
	m.backoff = ctx.Rand().IntN(1 << exp)
}

func (m *Member) dissolve(ctx proto.Context, reason string) {
	if m.stopped {
		return
	}
	m.Stop()
	if m.cfg.OnDissolve != nil {
		m.cfg.OnDissolve(ctx, reason)
	}
}

// gc drops round state old enough to be outside any blame window.
func (m *Member) gc(completed uint32) {
	horizon := uint32(m.cfg.FailureThreshold + 2)
	if completed <= horizon {
		return
	}
	cutoff := completed - horizon
	for n, rs := range m.rounds {
		if n >= cutoff || (m.blameRound != 0 && n == m.blameRound) {
			continue
		}
		if rs.complete {
			// Recycle the buffers only this member ever referenced; the
			// shares/partials it sent live on in peers' round state.
			m.scratch.put(rs.s, rs.t, rs.myContrib)
			delete(m.rounds, n)
		} else if !rs.started {
			// Input-only state for a round this member never ran — a
			// late retransmission recreated it after an earlier gc, or
			// the round number was skipped across an eviction epoch.
			// Nothing to recycle; just drop it.
			delete(m.rounds, n)
		}
	}
}
