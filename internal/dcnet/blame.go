package dcnet

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/proto"
)

// Blame protocol (§V-C, after von Ahn et al.): when the failure threshold
// trips, every member opens its shares for the last failed round. Each
// member then checks, for every peer p:
//
//  1. the opened shares match p's pre-round commitments,
//  2. the share p actually sent me equals p's opening for my slot,
//  3. p's opened shares XOR to an admissible contribution — all zeros,
//     a CRC-valid slot, or a CRC-valid announcement.
//
// A peer failing any check is the disruptor and is reported via OnBlame.
// Honest members that legitimately collided open CRC-valid contributions
// and are not blamed (they lose anonymity for that already-garbled round
// only — the simplification relative to von Ahn's full protocol, recorded
// in DESIGN.md).
//
// All members trip the threshold on the same round because round failure
// is defined symmetrically: a round fails for member j iff j sent and did
// not recover 0, or j did not send and recovered CRC-invalid garbage.
func (m *Member) startBlame(ctx proto.Context, round uint32) {
	if m.blameRound != 0 {
		return
	}
	rs := m.rounds[round]
	if rs == nil || rs.myShares == nil {
		return
	}
	m.blameRound = round
	m.BlamePhases++
	reveal := &RevealMsg{Round: round, Shares: rs.myShares, Salts: rs.mySalts}
	for _, p := range m.peers {
		m.sendReliable(ctx, p, reveal, round, KindReveal)
	}
	m.tryFinishBlame(ctx)
}

func (m *Member) onCommit(ctx proto.Context, from proto.NodeID, msg *CommitMsg) {
	if m.stopped || !m.isPeer(from) {
		return
	}
	m.ackIncoming(ctx, from, msg.Round, KindCommit)
	if len(msg.Digests) != len(m.peers) {
		return
	}
	rs := m.round(msg.Round)
	if _, dup := rs.gotCommits[from]; dup {
		return
	}
	rs.gotCommits[from] = msg.Digests
}

func (m *Member) onReveal(ctx proto.Context, from proto.NodeID, msg *RevealMsg) {
	if m.stopped || !m.isPeer(from) {
		return
	}
	m.ackIncoming(ctx, from, msg.Round, KindReveal)
	rs := m.round(msg.Round)
	if _, dup := rs.gotReveals[from]; dup {
		return
	}
	rs.gotReveals[from] = msg
	// A reveal may arrive before our own threshold trips (peers complete
	// rounds at slightly different times); join the blame phase.
	if m.blameRound == 0 && m.cfg.Policy == PolicyBlame {
		m.startBlame(ctx, msg.Round)
		return
	}
	m.tryFinishBlame(ctx)
}

// peerIndexIn returns the index of member `who` in the peer ordering of
// member `of` (members sorted, self skipped), or -1.
func (m *Member) peerIndexIn(of, who proto.NodeID) int {
	idx := 0
	for _, id := range m.members {
		if id == of {
			continue
		}
		if id == who {
			return idx
		}
		idx++
	}
	return -1
}

func (m *Member) tryFinishBlame(ctx proto.Context) {
	if m.blameRound == 0 {
		return
	}
	rs := m.rounds[m.blameRound]
	if rs == nil || len(rs.gotReveals) < len(m.peers) {
		return
	}
	round := m.blameRound
	m.blameRound = 0

	for _, p := range m.peers {
		if m.blamed[p] {
			continue
		}
		if culprit, reason := m.verifyReveal(rs, p); culprit {
			m.blamed[p] = true
			if m.cfg.OnBlame != nil {
				m.cfg.OnBlame(ctx, p)
			}
			_ = reason
		}
	}
	_ = round
	m.consecFailures = 0
}

// verifyReveal checks one peer's opening; it returns whether the peer is
// a disruptor and a diagnostic reason.
func (m *Member) verifyReveal(rs *roundState, p proto.NodeID) (bool, string) {
	rev := rs.gotReveals[p]
	if rev == nil {
		return true, "no reveal"
	}
	if len(rev.Shares) != len(m.peers) || len(rev.Salts) != len(m.peers) {
		return true, "malformed reveal"
	}
	// 1. Openings match commitments.
	if commits, ok := rs.gotCommits[p]; ok {
		for i := range rev.Shares {
			if !crypto.VerifyCommit(commits[i], rev.Shares[i], rev.Salts[i]) {
				return true, fmt.Sprintf("commitment %d mismatch", i)
			}
		}
	}
	// 2. The share p sent me matches its opening for my slot.
	myIdx := m.peerIndexIn(p, m.cfg.Self)
	if myIdx < 0 {
		return true, "self not in peer ordering"
	}
	if got, ok := rs.gotShares[p]; ok {
		if len(rev.Shares[myIdx]) != len(got) || !bytesEqual(rev.Shares[myIdx], got) {
			return true, "opened share differs from received share"
		}
	}
	// 3. The contribution is admissible.
	if len(rev.Shares[0]) != rs.slot {
		return true, "wrong share size"
	}
	contrib := make([]byte, rs.slot)
	for _, sh := range rev.Shares {
		if len(sh) != rs.slot {
			return true, "ragged share sizes"
		}
		crypto.XORBytes(contrib, sh)
	}
	if isZeroSlot(contrib) {
		return false, ""
	}
	if m.cfg.Mode == ModeFixed {
		if _, ok := unpackSlot(contrib); ok {
			return false, ""
		}
	} else if rs.kind.announce {
		if _, ok := unpackAnnounce(contrib); ok {
			return false, ""
		}
	} else {
		if _, ok := crypto.CheckCRC(contrib); ok {
			return false, ""
		}
	}
	return true, "garbage contribution"
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
