package dcnet

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topology"
)

// memberHandler adapts a Member to proto.Handler; drop, when set,
// discards matching incoming messages before the member sees them (the
// deterministic seeded-drop hook of the reliability tests).
type memberHandler struct {
	m    *Member
	drop func(from proto.NodeID, msg proto.Message) bool
}

func (h *memberHandler) Init(ctx proto.Context) { h.m.Start(ctx) }
func (h *memberHandler) HandleMessage(ctx proto.Context, from proto.NodeID, msg proto.Message) {
	if h.drop != nil && h.drop(from, msg) {
		return
	}
	h.m.HandleMessage(ctx, from, msg)
}
func (h *memberHandler) HandleTimer(ctx proto.Context, payload any) {
	h.m.HandleTimer(ctx, payload)
}

// groupHarness wires n members over a clique and records outcomes.
type groupHarness struct {
	net       *sim.Network
	handlers  []*memberHandler
	members   []*Member
	received  []map[string]int // per member: payload -> delivery count
	sendOK    []int
	sendFail  []int
	blames    []map[proto.NodeID]int
	evicted   []map[proto.NodeID]int
	dissolved []string
}

func newGroup(t *testing.T, n int, mutate func(i int, cfg *Config)) *groupHarness {
	t.Helper()
	g, err := topology.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	h := &groupHarness{
		net:       sim.NewNetwork(g, sim.Options{Seed: 77, Latency: sim.ConstLatency(5 * time.Millisecond)}),
		handlers:  make([]*memberHandler, n),
		members:   make([]*Member, n),
		received:  make([]map[string]int, n),
		sendOK:    make([]int, n),
		sendFail:  make([]int, n),
		blames:    make([]map[proto.NodeID]int, n),
		evicted:   make([]map[proto.NodeID]int, n),
		dissolved: make([]string, n),
	}
	all := make([]proto.NodeID, n)
	for i := range all {
		all[i] = proto.NodeID(i)
	}
	h.net.SetHandlers(func(id proto.NodeID) proto.Handler {
		i := int(id)
		h.received[i] = make(map[string]int)
		h.blames[i] = make(map[proto.NodeID]int)
		h.evicted[i] = make(map[proto.NodeID]int)
		cfg := Config{
			Self:     id,
			Members:  all,
			Mode:     ModeFixed,
			SlotSize: 64,
			Interval: 100 * time.Millisecond,
			Policy:   PolicyNone,
			OnDeliver: func(_ proto.Context, _ uint32, payload []byte) {
				h.received[i][string(payload)]++
			},
			OnSendResult: func(_ proto.Context, _ []byte, ok bool) {
				if ok {
					h.sendOK[i]++
				} else {
					h.sendFail[i]++
				}
			},
			OnBlame: func(_ proto.Context, culprit proto.NodeID) {
				h.blames[i][culprit]++
			},
			OnEvict: func(_ proto.Context, evictee proto.NodeID, _ []proto.NodeID) {
				h.evicted[i][evictee]++
			},
			OnDissolve: func(_ proto.Context, reason string) {
				h.dissolved[i] = reason
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		m, err := NewMember(cfg)
		if err != nil {
			t.Fatalf("NewMember(%d): %v", i, err)
		}
		h.members[i] = m
		h.handlers[i] = &memberHandler{m: m}
		return h.handlers[i]
	})
	h.net.Start()
	return h
}

func (h *groupHarness) runRounds(rounds int) {
	h.net.RunUntil(h.net.Now() + time.Duration(rounds)*100*time.Millisecond + 50*time.Millisecond)
}

func TestSingleSenderFixedMode(t *testing.T) {
	h := newGroup(t, 5, nil)
	payload := []byte("anonymous-tx")
	if err := h.members[2].Queue(payload); err != nil {
		t.Fatal(err)
	}
	h.runRounds(3)

	for i := 0; i < 5; i++ {
		want := 1
		if i == 2 {
			want = 0 // the sender recovers 0, not its own message
		}
		if got := h.received[i][string(payload)]; got != want {
			t.Errorf("member %d delivered %d copies, want %d", i, got, want)
		}
	}
	if h.sendOK[2] != 1 {
		t.Errorf("sender success count = %d, want 1", h.sendOK[2])
	}
	if h.members[2].Pending() != 0 {
		t.Errorf("queue not drained: %d", h.members[2].Pending())
	}
}

func TestMessageComplexityPerRound(t *testing.T) {
	// §V-A: Phase 1 incurs O(k²) messages — exactly 3·g·(g−1) per round
	// without the blame extension (experiment E2's formula).
	for _, n := range []int{4, 7, 10} {
		h := newGroup(t, n, nil)
		h.runRounds(1)
		completed := h.members[0].RoundsCompleted
		if completed == 0 {
			t.Fatalf("n=%d: no round completed", n)
		}
		want := int64(3 * n * (n - 1) * completed)
		if got := h.net.TotalMessages(); got != want {
			t.Errorf("n=%d: %d messages for %d rounds, want %d", n, got, completed, want)
		}
	}
}

func TestTwoSenderCollisionAndRecovery(t *testing.T) {
	// Two members transmit in the same round: each recovers the other's
	// message (M ⊕ m_j), non-senders see garbage, and backoff separates
	// the retries until both succeed.
	h := newGroup(t, 5, nil)
	pa, pb := []byte("payload-from-a"), []byte("payload-from-b")
	if err := h.members[0].Queue(pa); err != nil {
		t.Fatal(err)
	}
	if err := h.members[1].Queue(pb); err != nil {
		t.Fatal(err)
	}
	h.runRounds(1)

	// After the colliding round: sender 0 saw b's message, sender 1 saw
	// a's, non-senders saw nothing valid.
	if h.received[0][string(pb)] != 1 {
		t.Errorf("sender 0 did not recover the colliding message")
	}
	if h.received[1][string(pa)] != 1 {
		t.Errorf("sender 1 did not recover the colliding message")
	}
	for i := 2; i < 5; i++ {
		if len(h.received[i]) != 0 {
			t.Errorf("non-sender %d delivered %v during collision", i, h.received[i])
		}
	}
	if h.members[0].Collisions == 0 || h.members[1].Collisions == 0 {
		t.Error("collision not counted by senders")
	}

	// Let backoff resolve: eventually everyone has both payloads.
	h.runRounds(80)
	for i := 0; i < 5; i++ {
		for _, p := range [][]byte{pa, pb} {
			if (i == 0 && bytes.Equal(p, pa)) || (i == 1 && bytes.Equal(p, pb)) {
				continue // own message never self-delivered
			}
			if h.received[i][string(p)] == 0 {
				t.Errorf("member %d never received %q after retries", i, p)
			}
		}
	}
	if h.sendOK[0] != 1 || h.sendOK[1] != 1 {
		t.Errorf("send successes = %d,%d, want 1,1", h.sendOK[0], h.sendOK[1])
	}
}

func TestAnnounceModeDelivery(t *testing.T) {
	h := newGroup(t, 5, func(i int, cfg *Config) {
		cfg.Mode = ModeAnnounce
	})
	payload := []byte("a somewhat longer anonymous transaction payload")
	if err := h.members[3].Queue(payload); err != nil {
		t.Fatal(err)
	}
	h.runRounds(4) // announce + data + slack

	for i := 0; i < 5; i++ {
		want := 1
		if i == 3 {
			want = 0
		}
		if got := h.received[i][string(payload)]; got != want {
			t.Errorf("member %d delivered %d copies, want %d", i, got, want)
		}
	}
	if h.sendOK[3] != 1 {
		t.Errorf("sender success = %d, want 1", h.sendOK[3])
	}
}

func TestAnnounceModeIdleBytesSmall(t *testing.T) {
	// §V-A: idle announce rounds move 8-byte slots instead of full-size
	// ones. Compare ShareMsg payload sizes: announce slots are 8 bytes.
	h := newGroup(t, 4, func(i int, cfg *Config) {
		cfg.Mode = ModeAnnounce
	})
	h.runRounds(3)
	if h.members[0].RoundsCompleted == 0 {
		t.Fatal("no rounds completed")
	}
	// All rounds idle: every exchanged buffer is the 8-byte announce slot.
	for n, rs := range h.members[0].rounds {
		if rs.complete && rs.slot != AnnounceSlotSize {
			t.Errorf("idle round %d used slot %d, want %d", n, rs.slot, AnnounceSlotSize)
		}
	}
}

func TestTimeoutDissolvesOnCrash(t *testing.T) {
	h := newGroup(t, 4, func(i int, cfg *Config) {
		cfg.Timeout = 300 * time.Millisecond
	})
	h.net.Crash(1)
	h.runRounds(8)
	for i := 0; i < 4; i++ {
		if i == 1 {
			continue
		}
		if h.dissolved[i] == "" {
			t.Errorf("member %d did not dissolve after peer crash", i)
		}
		if !h.members[i].Stopped() {
			t.Errorf("member %d still running", i)
		}
	}
}

func TestDissolvePolicyOnDisruptor(t *testing.T) {
	h := newGroup(t, 5, func(i int, cfg *Config) {
		cfg.Policy = PolicyDissolve
		cfg.FailureThreshold = 3
		if i == 4 {
			cfg.Disrupt = true
		}
	})
	h.runRounds(10)
	for i := 0; i < 4; i++ {
		if h.dissolved[i] == "" {
			t.Errorf("member %d did not dissolve under constant disruption", i)
		}
	}
}

func TestBlameIdentifiesDisruptor(t *testing.T) {
	const disruptor = 2
	h := newGroup(t, 6, func(i int, cfg *Config) {
		cfg.Policy = PolicyBlame
		cfg.FailureThreshold = 3
		if i == disruptor {
			cfg.Disrupt = true
		}
	})
	h.runRounds(12)
	for i := 0; i < 6; i++ {
		if i == disruptor {
			continue
		}
		if h.blames[i][proto.NodeID(disruptor)] == 0 {
			t.Errorf("member %d did not blame the disruptor", i)
		}
		for culprit := range h.blames[i] {
			if culprit != proto.NodeID(disruptor) {
				t.Errorf("member %d wrongly blamed honest member %d", i, culprit)
			}
		}
		if h.members[i].BlamePhases == 0 {
			t.Errorf("member %d never entered a blame phase", i)
		}
	}
}

func TestBlameSparesHonestColliders(t *testing.T) {
	// Honest members that repeatedly collide must not be blamed: their
	// openings are CRC-valid. Force repeated collisions by disabling
	// backoff randomness via tiny threshold and two eager senders.
	h := newGroup(t, 5, func(i int, cfg *Config) {
		cfg.Policy = PolicyBlame
		cfg.FailureThreshold = 2
		cfg.MaxBackoffExp = 1 // backoff ∈ {0,1}: collisions stay frequent
	})
	if err := h.members[0].Queue([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := h.members[1].Queue([]byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	h.runRounds(40)
	for i := 0; i < 5; i++ {
		for culprit, cnt := range h.blames[i] {
			if cnt > 0 {
				t.Errorf("member %d blamed honest member %d", i, culprit)
			}
		}
	}
}

func TestEncryptedChannels(t *testing.T) {
	const n = 4
	// Build pairwise channels; initiator is the smaller ID.
	kx := make([]*crypto.KeyExchange, n)
	for i := range kx {
		var err error
		kx[i], err = crypto.NewKeyExchange(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
	}
	channels := make([]map[proto.NodeID]*crypto.SecureChannel, n)
	for i := 0; i < n; i++ {
		channels[i] = make(map[proto.NodeID]*crypto.SecureChannel)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ch, err := kx[i].Channel(kx[j].PublicBytes(), i < j)
			if err != nil {
				t.Fatal(err)
			}
			channels[i][proto.NodeID(j)] = ch
		}
	}
	h := newGroup(t, n, func(i int, cfg *Config) {
		cfg.Channels = channels[i]
	})
	payload := []byte("sealed-tx")
	if err := h.members[1].Queue(payload); err != nil {
		t.Fatal(err)
	}
	h.runRounds(3)
	for i := 0; i < n; i++ {
		want := 1
		if i == 1 {
			want = 0
		}
		if got := h.received[i][string(payload)]; got != want {
			t.Errorf("member %d delivered %d copies, want %d", i, got, want)
		}
	}
}

func TestQueueValidation(t *testing.T) {
	all := []proto.NodeID{0, 1, 2}
	m, err := NewMember(Config{Self: 0, Members: all, Mode: ModeFixed, SlotSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Queue(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := m.Queue(make([]byte, 1000)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("oversized payload: %v", err)
	}
	m.Stop()
	if err := m.Queue([]byte("x")); !errors.Is(err, ErrStopped) {
		t.Errorf("stopped member accepted payload: %v", err)
	}
}

func TestNewMemberValidation(t *testing.T) {
	if _, err := NewMember(Config{Self: 0, Members: []proto.NodeID{0}}); !errors.Is(err, ErrGroupTooSmall) {
		t.Errorf("singleton group: %v", err)
	}
	if _, err := NewMember(Config{Self: 9, Members: []proto.NodeID{0, 1}}); !errors.Is(err, ErrNotMember) {
		t.Errorf("non-member self: %v", err)
	}
	if _, err := NewMember(Config{Self: 0, Members: []proto.NodeID{0, 1}, SlotSize: 4}); err == nil {
		t.Error("tiny slot accepted")
	}
}

func TestManyGroupSizesDeliver(t *testing.T) {
	// The paper's k ranges over "four and ten"; group sizes span
	// [k, 2k−1]. Exercise the whole band.
	for n := 2; n <= 12; n++ {
		n := n
		t.Run(fmt.Sprintf("g=%d", n), func(t *testing.T) {
			h := newGroup(t, n, nil)
			payload := []byte{byte(n), 0xee}
			if err := h.members[n-1].Queue(payload); err != nil {
				t.Fatal(err)
			}
			h.runRounds(3)
			for i := 0; i < n-1; i++ {
				if h.received[i][string(payload)] != 1 {
					t.Errorf("member %d missed the payload", i)
				}
			}
		})
	}
}

func TestSlotPacking(t *testing.T) {
	slot, err := packSlot([]byte("hello"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(slot) != 32 {
		t.Fatalf("slot length = %d", len(slot))
	}
	got, ok := unpackSlot(slot)
	if !ok || string(got) != "hello" {
		t.Errorf("unpack = %q, %v", got, ok)
	}
	slot[5] ^= 1
	if _, ok := unpackSlot(slot); ok {
		t.Error("corrupted slot accepted")
	}
	if _, err := packSlot(make([]byte, 30), 32); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("oversized pack: %v", err)
	}
	// XOR of two valid slots must fail validation (collision detection).
	a, _ := packSlot([]byte("aaaa"), 32)
	b, _ := packSlot([]byte("bbbbbb"), 32)
	crypto.XORBytes(a, b)
	if _, ok := unpackSlot(a); ok {
		t.Error("collided slots accepted")
	}
}

func TestAnnouncePacking(t *testing.T) {
	slot := packAnnounce(1234)
	l, ok := unpackAnnounce(slot)
	if !ok || l != 1234 {
		t.Errorf("unpackAnnounce = %d, %v", l, ok)
	}
	slot[1] ^= 0xff
	if _, ok := unpackAnnounce(slot); ok {
		t.Error("corrupted announce accepted")
	}
	if _, ok := unpackAnnounce([]byte{1, 2, 3}); ok {
		t.Error("short announce accepted")
	}
}

// dropFirst builds a drop filter discarding the first `count` incoming
// messages from `from` whose kind matches.
func dropFirst(from proto.NodeID, kind uint8, count int) func(proto.NodeID, proto.Message) bool {
	return func(src proto.NodeID, msg proto.Message) bool {
		if src != from || count <= 0 {
			return false
		}
		var k uint8
		switch msg.(type) {
		case *ShareMsg:
			k = KindShare
		case *SPartialMsg:
			k = KindSPartial
		case *TPartialMsg:
			k = KindTPartial
		default:
			return false
		}
		if k != kind {
			return false
		}
		count--
		return true
	}
}

// TestRetransmitTimeoutStateMachine is the reliability-layer table: for
// every share position (sender a → receiver b in a group of 4) and every
// exchange kind, a seeded drop of the first copy must either be repaired
// by retransmission (budget ≥ 1: the round completes and delivers
// exactly once everywhere) or fail deterministically (budget 0: the
// round stalls and the dissolve policy fires at every member).
func TestRetransmitTimeoutStateMachine(t *testing.T) {
	const g = 4
	kinds := []struct {
		name string
		kind uint8
	}{{"share", KindShare}, {"s-partial", KindSPartial}, {"t-partial", KindTPartial}}
	for _, budget := range []int{0, 1, 3} {
		for _, kd := range kinds {
			for a := 0; a < g; a++ {
				for b := 0; b < g; b++ {
					if a == b {
						continue
					}
					budget, kd, a, b := budget, kd, a, b
					t.Run(fmt.Sprintf("budget=%d/%s/%d to %d", budget, kd.name, a, b), func(t *testing.T) {
						h := newGroup(t, g, func(i int, cfg *Config) {
							cfg.RetransmitTimeout = 30 * time.Millisecond
							cfg.RetryBudget = budget
							cfg.Timeout = 320 * time.Millisecond
							cfg.Policy = PolicyDissolve
						})
						h.handlers[b].drop = dropFirst(proto.NodeID(a), kd.kind, 1)
						payload := []byte("loss-tolerant-tx")
						if err := h.members[0].Queue(payload); err != nil {
							t.Fatal(err)
						}
						h.runRounds(6)

						if budget == 0 {
							// No repair allowed: the stalled round times out
							// and the policy fires at every member, rather
							// than some members hanging forever.
							for i := 0; i < g; i++ {
								if h.dissolved[i] == "" {
									t.Errorf("member %d did not dissolve with retry budget 0", i)
								}
							}
							return
						}
						for i := 1; i < g; i++ {
							if got := h.received[i][string(payload)]; got != 1 {
								t.Errorf("member %d delivered %d copies, want 1", i, got)
							}
						}
						if h.sendOK[0] != 1 {
							t.Errorf("sender success = %d, want 1", h.sendOK[0])
						}
						if h.members[a].Retransmits() == 0 {
							t.Errorf("dropped %s from %d was never retransmitted", kd.name, a)
						}
						for i := 0; i < g; i++ {
							if h.dissolved[i] != "" {
								t.Errorf("member %d dissolved (%q) despite successful repair", i, h.dissolved[i])
							}
						}
					})
				}
			}
		}
	}
}

// TestNackPullsRetransmission pins the fast path: with a retransmit
// timeout far beyond the round interval, recovery must come from the
// receiver's deferral nack, not the sender's timer.
func TestNackPullsRetransmission(t *testing.T) {
	h := newGroup(t, 4, func(i int, cfg *Config) {
		cfg.RetransmitTimeout = 5 * time.Second // never fires inside the test
		cfg.RetryBudget = 2
	})
	h.handlers[2].drop = dropFirst(1, KindShare, 1)
	payload := []byte("nack-recovered")
	if err := h.members[0].Queue(payload); err != nil {
		t.Fatal(err)
	}
	h.runRounds(6)
	for i := 1; i < 4; i++ {
		if got := h.received[i][string(payload)]; got != 1 {
			t.Errorf("member %d delivered %d copies, want 1", i, got)
		}
	}
	if h.members[2].Nacks() == 0 {
		t.Error("stalled member sent no nacks")
	}
	if h.members[1].Retransmits() != 1 {
		t.Errorf("sender retransmits = %d, want exactly 1 (nack-pulled)", h.members[1].Retransmits())
	}
}

// TestReliabilityPreservesBlame ensures the ack/retransmit layer does
// not break the §V-C machinery: a disruptor is still identified under
// PolicyBlame with reliability on.
func TestReliabilityPreservesBlame(t *testing.T) {
	const disruptor = 2
	h := newGroup(t, 5, func(i int, cfg *Config) {
		cfg.Policy = PolicyBlame
		cfg.FailureThreshold = 3
		cfg.RetransmitTimeout = 30 * time.Millisecond
		cfg.RetryBudget = 2
		if i == disruptor {
			cfg.Disrupt = true
		}
	})
	h.runRounds(12)
	for i := 0; i < 5; i++ {
		if i == disruptor {
			continue
		}
		if h.blames[i][proto.NodeID(disruptor)] == 0 {
			t.Errorf("member %d did not blame the disruptor", i)
		}
		for culprit := range h.blames[i] {
			if culprit != proto.NodeID(disruptor) {
				t.Errorf("member %d wrongly blamed honest member %d", i, culprit)
			}
		}
	}
}

// TestFailoverEvictsCrashedMember is the failover happy path: a member
// that crashes goes silent, accumulates EvictAfter misses, and is
// evicted by every survivor — which then re-key (epoch bump, shrunk
// membership) and deliver traffic again.
func TestFailoverEvictsCrashedMember(t *testing.T) {
	const g, victim = 5, 3
	for _, crashAt := range []time.Duration{
		10 * time.Millisecond,  // before the first round
		105 * time.Millisecond, // mid-exchange of round 1
		250 * time.Millisecond, // between later rounds
	} {
		crashAt := crashAt
		t.Run(crashAt.String(), func(t *testing.T) {
			h := newGroup(t, g, func(i int, cfg *Config) {
				cfg.RetransmitTimeout = 30 * time.Millisecond
				cfg.RetryBudget = 2
				cfg.EvictAfter = 2
				cfg.Timeout = 150 * time.Millisecond
				cfg.MinMembers = 3
				cfg.Policy = PolicyNone
			})
			h.net.Engine().Schedule(crashAt, func() { h.net.Crash(victim) })
			h.runRounds(12)

			for i := 0; i < g; i++ {
				if i == victim {
					continue
				}
				m := h.members[i]
				if h.evicted[i][victim] != 1 {
					t.Errorf("member %d evicted victim %d times, want 1", i, h.evicted[i][victim])
				}
				if m.GroupSize() != g-1 {
					t.Errorf("member %d group size %d after eviction, want %d", i, m.GroupSize(), g-1)
				}
				if m.Epoch() != 1 {
					t.Errorf("member %d epoch %d, want 1 (re-key)", i, m.Epoch())
				}
				if m.Stopped() {
					t.Errorf("member %d stopped; failover should keep the group alive", i)
				}
				for _, id := range m.Members() {
					if id == victim {
						t.Errorf("member %d still lists the victim", i)
					}
				}
			}

			// The shrunk group still carries traffic.
			payload := []byte{byte(crashAt / time.Millisecond), 0x5e}
			if err := h.members[0].Queue(payload); err != nil {
				t.Fatal(err)
			}
			h.runRounds(8)
			for i := 1; i < g; i++ {
				if i == victim {
					continue
				}
				if got := h.received[i][string(payload)]; got != 1 {
					t.Errorf("member %d delivered %d copies post-eviction, want 1", i, got)
				}
			}
		})
	}
}

// TestFailoverFloorDissolves pins the floor: when eviction would shrink
// the group below MinMembers, it dissolves instead of running under the
// configured anonymity floor.
func TestFailoverFloorDissolves(t *testing.T) {
	const g, victim = 4, 1
	h := newGroup(t, g, func(i int, cfg *Config) {
		cfg.RetransmitTimeout = 30 * time.Millisecond
		cfg.RetryBudget = 2
		cfg.EvictAfter = 2
		cfg.Timeout = 150 * time.Millisecond
		cfg.MinMembers = g // any eviction goes below the floor
		cfg.Policy = PolicyNone
	})
	h.net.Crash(victim)
	h.runRounds(12)
	for i := 0; i < g; i++ {
		if i == victim {
			continue
		}
		if h.evicted[i][victim] != 1 {
			t.Errorf("member %d did not evict the crashed member", i)
		}
		if h.dissolved[i] == "" {
			t.Errorf("member %d did not dissolve below the floor", i)
		}
		if !h.members[i].Stopped() {
			t.Errorf("member %d still running below the floor", i)
		}
	}
}

// TestFailoverSparesLossyPeer ensures eviction needs total silence, not
// bad luck: a peer whose messages are dropped but repaired (alive and
// acking) must never be evicted even while rounds are slow.
func TestFailoverSparesLossyPeer(t *testing.T) {
	const g, lossyPeer = 4, 2
	h := newGroup(t, g, func(i int, cfg *Config) {
		cfg.RetransmitTimeout = 30 * time.Millisecond
		cfg.RetryBudget = 3
		cfg.EvictAfter = 2
		cfg.Timeout = 150 * time.Millisecond
		cfg.MinMembers = 3
		cfg.Policy = PolicyNone
	})
	// Drop the lossy peer's first share toward everyone, every round for
	// a while: rounds limp but the peer is audibly alive (acks, nacked
	// retransmissions), so no one may charge it a miss.
	for i := 0; i < g; i++ {
		if i != lossyPeer {
			h.handlers[i].drop = dropFirst(lossyPeer, KindShare, 4)
		}
	}
	h.runRounds(20)
	for i := 0; i < g; i++ {
		if len(h.evicted[i]) != 0 {
			t.Errorf("member %d evicted %v; lossy-but-alive peers must be spared", i, h.evicted[i])
		}
		if h.dissolved[i] != "" {
			t.Errorf("member %d dissolved: %q", i, h.dissolved[i])
		}
	}
	if h.members[0].RoundsCompleted == 0 {
		t.Error("no rounds completed under repairable loss")
	}
}
