package dcnet

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topology"
)

// memberHandler adapts a Member to proto.Handler.
type memberHandler struct{ m *Member }

func (h *memberHandler) Init(ctx proto.Context) { h.m.Start(ctx) }
func (h *memberHandler) HandleMessage(ctx proto.Context, from proto.NodeID, msg proto.Message) {
	h.m.HandleMessage(ctx, from, msg)
}
func (h *memberHandler) HandleTimer(ctx proto.Context, payload any) {
	h.m.HandleTimer(ctx, payload)
}

// groupHarness wires n members over a clique and records outcomes.
type groupHarness struct {
	net       *sim.Network
	members   []*Member
	received  []map[string]int // per member: payload -> delivery count
	sendOK    []int
	sendFail  []int
	blames    []map[proto.NodeID]int
	dissolved []string
}

func newGroup(t *testing.T, n int, mutate func(i int, cfg *Config)) *groupHarness {
	t.Helper()
	g, err := topology.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	h := &groupHarness{
		net:       sim.NewNetwork(g, sim.Options{Seed: 77, Latency: sim.ConstLatency(5 * time.Millisecond)}),
		members:   make([]*Member, n),
		received:  make([]map[string]int, n),
		sendOK:    make([]int, n),
		sendFail:  make([]int, n),
		blames:    make([]map[proto.NodeID]int, n),
		dissolved: make([]string, n),
	}
	all := make([]proto.NodeID, n)
	for i := range all {
		all[i] = proto.NodeID(i)
	}
	h.net.SetHandlers(func(id proto.NodeID) proto.Handler {
		i := int(id)
		h.received[i] = make(map[string]int)
		h.blames[i] = make(map[proto.NodeID]int)
		cfg := Config{
			Self:     id,
			Members:  all,
			Mode:     ModeFixed,
			SlotSize: 64,
			Interval: 100 * time.Millisecond,
			Policy:   PolicyNone,
			OnDeliver: func(_ proto.Context, _ uint32, payload []byte) {
				h.received[i][string(payload)]++
			},
			OnSendResult: func(_ proto.Context, _ []byte, ok bool) {
				if ok {
					h.sendOK[i]++
				} else {
					h.sendFail[i]++
				}
			},
			OnBlame: func(_ proto.Context, culprit proto.NodeID) {
				h.blames[i][culprit]++
			},
			OnDissolve: func(_ proto.Context, reason string) {
				h.dissolved[i] = reason
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		m, err := NewMember(cfg)
		if err != nil {
			t.Fatalf("NewMember(%d): %v", i, err)
		}
		h.members[i] = m
		return &memberHandler{m: m}
	})
	h.net.Start()
	return h
}

func (h *groupHarness) runRounds(rounds int) {
	h.net.RunUntil(h.net.Now() + time.Duration(rounds)*100*time.Millisecond + 50*time.Millisecond)
}

func TestSingleSenderFixedMode(t *testing.T) {
	h := newGroup(t, 5, nil)
	payload := []byte("anonymous-tx")
	if err := h.members[2].Queue(payload); err != nil {
		t.Fatal(err)
	}
	h.runRounds(3)

	for i := 0; i < 5; i++ {
		want := 1
		if i == 2 {
			want = 0 // the sender recovers 0, not its own message
		}
		if got := h.received[i][string(payload)]; got != want {
			t.Errorf("member %d delivered %d copies, want %d", i, got, want)
		}
	}
	if h.sendOK[2] != 1 {
		t.Errorf("sender success count = %d, want 1", h.sendOK[2])
	}
	if h.members[2].Pending() != 0 {
		t.Errorf("queue not drained: %d", h.members[2].Pending())
	}
}

func TestMessageComplexityPerRound(t *testing.T) {
	// §V-A: Phase 1 incurs O(k²) messages — exactly 3·g·(g−1) per round
	// without the blame extension (experiment E2's formula).
	for _, n := range []int{4, 7, 10} {
		h := newGroup(t, n, nil)
		h.runRounds(1)
		completed := h.members[0].RoundsCompleted
		if completed == 0 {
			t.Fatalf("n=%d: no round completed", n)
		}
		want := int64(3 * n * (n - 1) * completed)
		if got := h.net.TotalMessages(); got != want {
			t.Errorf("n=%d: %d messages for %d rounds, want %d", n, got, completed, want)
		}
	}
}

func TestTwoSenderCollisionAndRecovery(t *testing.T) {
	// Two members transmit in the same round: each recovers the other's
	// message (M ⊕ m_j), non-senders see garbage, and backoff separates
	// the retries until both succeed.
	h := newGroup(t, 5, nil)
	pa, pb := []byte("payload-from-a"), []byte("payload-from-b")
	if err := h.members[0].Queue(pa); err != nil {
		t.Fatal(err)
	}
	if err := h.members[1].Queue(pb); err != nil {
		t.Fatal(err)
	}
	h.runRounds(1)

	// After the colliding round: sender 0 saw b's message, sender 1 saw
	// a's, non-senders saw nothing valid.
	if h.received[0][string(pb)] != 1 {
		t.Errorf("sender 0 did not recover the colliding message")
	}
	if h.received[1][string(pa)] != 1 {
		t.Errorf("sender 1 did not recover the colliding message")
	}
	for i := 2; i < 5; i++ {
		if len(h.received[i]) != 0 {
			t.Errorf("non-sender %d delivered %v during collision", i, h.received[i])
		}
	}
	if h.members[0].Collisions == 0 || h.members[1].Collisions == 0 {
		t.Error("collision not counted by senders")
	}

	// Let backoff resolve: eventually everyone has both payloads.
	h.runRounds(80)
	for i := 0; i < 5; i++ {
		for _, p := range [][]byte{pa, pb} {
			if (i == 0 && bytes.Equal(p, pa)) || (i == 1 && bytes.Equal(p, pb)) {
				continue // own message never self-delivered
			}
			if h.received[i][string(p)] == 0 {
				t.Errorf("member %d never received %q after retries", i, p)
			}
		}
	}
	if h.sendOK[0] != 1 || h.sendOK[1] != 1 {
		t.Errorf("send successes = %d,%d, want 1,1", h.sendOK[0], h.sendOK[1])
	}
}

func TestAnnounceModeDelivery(t *testing.T) {
	h := newGroup(t, 5, func(i int, cfg *Config) {
		cfg.Mode = ModeAnnounce
	})
	payload := []byte("a somewhat longer anonymous transaction payload")
	if err := h.members[3].Queue(payload); err != nil {
		t.Fatal(err)
	}
	h.runRounds(4) // announce + data + slack

	for i := 0; i < 5; i++ {
		want := 1
		if i == 3 {
			want = 0
		}
		if got := h.received[i][string(payload)]; got != want {
			t.Errorf("member %d delivered %d copies, want %d", i, got, want)
		}
	}
	if h.sendOK[3] != 1 {
		t.Errorf("sender success = %d, want 1", h.sendOK[3])
	}
}

func TestAnnounceModeIdleBytesSmall(t *testing.T) {
	// §V-A: idle announce rounds move 8-byte slots instead of full-size
	// ones. Compare ShareMsg payload sizes: announce slots are 8 bytes.
	h := newGroup(t, 4, func(i int, cfg *Config) {
		cfg.Mode = ModeAnnounce
	})
	h.runRounds(3)
	if h.members[0].RoundsCompleted == 0 {
		t.Fatal("no rounds completed")
	}
	// All rounds idle: every exchanged buffer is the 8-byte announce slot.
	for n, rs := range h.members[0].rounds {
		if rs.complete && rs.slot != AnnounceSlotSize {
			t.Errorf("idle round %d used slot %d, want %d", n, rs.slot, AnnounceSlotSize)
		}
	}
}

func TestTimeoutDissolvesOnCrash(t *testing.T) {
	h := newGroup(t, 4, func(i int, cfg *Config) {
		cfg.Timeout = 300 * time.Millisecond
	})
	h.net.Crash(1)
	h.runRounds(8)
	for i := 0; i < 4; i++ {
		if i == 1 {
			continue
		}
		if h.dissolved[i] == "" {
			t.Errorf("member %d did not dissolve after peer crash", i)
		}
		if !h.members[i].Stopped() {
			t.Errorf("member %d still running", i)
		}
	}
}

func TestDissolvePolicyOnDisruptor(t *testing.T) {
	h := newGroup(t, 5, func(i int, cfg *Config) {
		cfg.Policy = PolicyDissolve
		cfg.FailureThreshold = 3
		if i == 4 {
			cfg.Disrupt = true
		}
	})
	h.runRounds(10)
	for i := 0; i < 4; i++ {
		if h.dissolved[i] == "" {
			t.Errorf("member %d did not dissolve under constant disruption", i)
		}
	}
}

func TestBlameIdentifiesDisruptor(t *testing.T) {
	const disruptor = 2
	h := newGroup(t, 6, func(i int, cfg *Config) {
		cfg.Policy = PolicyBlame
		cfg.FailureThreshold = 3
		if i == disruptor {
			cfg.Disrupt = true
		}
	})
	h.runRounds(12)
	for i := 0; i < 6; i++ {
		if i == disruptor {
			continue
		}
		if h.blames[i][proto.NodeID(disruptor)] == 0 {
			t.Errorf("member %d did not blame the disruptor", i)
		}
		for culprit := range h.blames[i] {
			if culprit != proto.NodeID(disruptor) {
				t.Errorf("member %d wrongly blamed honest member %d", i, culprit)
			}
		}
		if h.members[i].BlamePhases == 0 {
			t.Errorf("member %d never entered a blame phase", i)
		}
	}
}

func TestBlameSparesHonestColliders(t *testing.T) {
	// Honest members that repeatedly collide must not be blamed: their
	// openings are CRC-valid. Force repeated collisions by disabling
	// backoff randomness via tiny threshold and two eager senders.
	h := newGroup(t, 5, func(i int, cfg *Config) {
		cfg.Policy = PolicyBlame
		cfg.FailureThreshold = 2
		cfg.MaxBackoffExp = 1 // backoff ∈ {0,1}: collisions stay frequent
	})
	if err := h.members[0].Queue([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := h.members[1].Queue([]byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	h.runRounds(40)
	for i := 0; i < 5; i++ {
		for culprit, cnt := range h.blames[i] {
			if cnt > 0 {
				t.Errorf("member %d blamed honest member %d", i, culprit)
			}
		}
	}
}

func TestEncryptedChannels(t *testing.T) {
	const n = 4
	// Build pairwise channels; initiator is the smaller ID.
	kx := make([]*crypto.KeyExchange, n)
	for i := range kx {
		var err error
		kx[i], err = crypto.NewKeyExchange(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
	}
	channels := make([]map[proto.NodeID]*crypto.SecureChannel, n)
	for i := 0; i < n; i++ {
		channels[i] = make(map[proto.NodeID]*crypto.SecureChannel)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ch, err := kx[i].Channel(kx[j].PublicBytes(), i < j)
			if err != nil {
				t.Fatal(err)
			}
			channels[i][proto.NodeID(j)] = ch
		}
	}
	h := newGroup(t, n, func(i int, cfg *Config) {
		cfg.Channels = channels[i]
	})
	payload := []byte("sealed-tx")
	if err := h.members[1].Queue(payload); err != nil {
		t.Fatal(err)
	}
	h.runRounds(3)
	for i := 0; i < n; i++ {
		want := 1
		if i == 1 {
			want = 0
		}
		if got := h.received[i][string(payload)]; got != want {
			t.Errorf("member %d delivered %d copies, want %d", i, got, want)
		}
	}
}

func TestQueueValidation(t *testing.T) {
	all := []proto.NodeID{0, 1, 2}
	m, err := NewMember(Config{Self: 0, Members: all, Mode: ModeFixed, SlotSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Queue(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := m.Queue(make([]byte, 1000)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("oversized payload: %v", err)
	}
	m.Stop()
	if err := m.Queue([]byte("x")); !errors.Is(err, ErrStopped) {
		t.Errorf("stopped member accepted payload: %v", err)
	}
}

func TestNewMemberValidation(t *testing.T) {
	if _, err := NewMember(Config{Self: 0, Members: []proto.NodeID{0}}); !errors.Is(err, ErrGroupTooSmall) {
		t.Errorf("singleton group: %v", err)
	}
	if _, err := NewMember(Config{Self: 9, Members: []proto.NodeID{0, 1}}); !errors.Is(err, ErrNotMember) {
		t.Errorf("non-member self: %v", err)
	}
	if _, err := NewMember(Config{Self: 0, Members: []proto.NodeID{0, 1}, SlotSize: 4}); err == nil {
		t.Error("tiny slot accepted")
	}
}

func TestManyGroupSizesDeliver(t *testing.T) {
	// The paper's k ranges over "four and ten"; group sizes span
	// [k, 2k−1]. Exercise the whole band.
	for n := 2; n <= 12; n++ {
		n := n
		t.Run(fmt.Sprintf("g=%d", n), func(t *testing.T) {
			h := newGroup(t, n, nil)
			payload := []byte{byte(n), 0xee}
			if err := h.members[n-1].Queue(payload); err != nil {
				t.Fatal(err)
			}
			h.runRounds(3)
			for i := 0; i < n-1; i++ {
				if h.received[i][string(payload)] != 1 {
					t.Errorf("member %d missed the payload", i)
				}
			}
		})
	}
}

func TestSlotPacking(t *testing.T) {
	slot, err := packSlot([]byte("hello"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(slot) != 32 {
		t.Fatalf("slot length = %d", len(slot))
	}
	got, ok := unpackSlot(slot)
	if !ok || string(got) != "hello" {
		t.Errorf("unpack = %q, %v", got, ok)
	}
	slot[5] ^= 1
	if _, ok := unpackSlot(slot); ok {
		t.Error("corrupted slot accepted")
	}
	if _, err := packSlot(make([]byte, 30), 32); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("oversized pack: %v", err)
	}
	// XOR of two valid slots must fail validation (collision detection).
	a, _ := packSlot([]byte("aaaa"), 32)
	b, _ := packSlot([]byte("bbbbbb"), 32)
	crypto.XORBytes(a, b)
	if _, ok := unpackSlot(a); ok {
		t.Error("collided slots accepted")
	}
}

func TestAnnouncePacking(t *testing.T) {
	slot := packAnnounce(1234)
	l, ok := unpackAnnounce(slot)
	if !ok || l != 1234 {
		t.Errorf("unpackAnnounce = %d, %v", l, ok)
	}
	slot[1] ^= 0xff
	if _, ok := unpackAnnounce(slot); ok {
		t.Error("corrupted announce accepted")
	}
	if _, ok := unpackAnnounce([]byte{1, 2, 3}); ok {
		t.Error("short announce accepted")
	}
}
