package dcnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/crypto"
)

// Slot layout constants.
const (
	// slotHeaderSize is the length-prefix inside a fixed-size slot.
	slotHeaderSize = 4
	// slotTrailerSize is the CRC32-C trailer (§III-B's "CRC bits").
	slotTrailerSize = 4
	// SlotOverhead is the per-slot framing cost in fixed mode.
	SlotOverhead = slotHeaderSize + slotTrailerSize
	// AnnounceSlotSize is the §V-A optimization's announcement slot: a
	// 32-bit length "protected by CRC bits" — 8 bytes total.
	AnnounceSlotSize = 8
)

// ErrPayloadTooLarge reports a payload that does not fit the slot.
var ErrPayloadTooLarge = errors.New("dcnet: payload exceeds slot capacity")

var slotTable = crc32.MakeTable(crc32.Castagnoli)

// packSlotInto frames payload into buf, a fixed slot:
// [u32 length][payload][zero pad][u32 CRC over everything before it].
func packSlotInto(buf, payload []byte) error {
	if len(payload) > len(buf)-SlotOverhead {
		return fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(payload), len(buf)-SlotOverhead)
	}
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[slotHeaderSize:], payload)
	clear(buf[slotHeaderSize+len(payload) : len(buf)-slotTrailerSize])
	crc := crc32.Checksum(buf[:len(buf)-slotTrailerSize], slotTable)
	binary.LittleEndian.PutUint32(buf[len(buf)-slotTrailerSize:], crc)
	return nil
}

// packSlot allocates and frames a fixed slot (see packSlotInto).
func packSlot(payload []byte, slotSize int) ([]byte, error) {
	buf := make([]byte, slotSize)
	if err := packSlotInto(buf, payload); err != nil {
		return nil, err
	}
	return buf, nil
}

// unpackSlot validates and extracts a payload from a fixed slot. ok is
// false for collisions/garbage (CRC or bounds failure).
func unpackSlot(slot []byte) (payload []byte, ok bool) {
	if len(slot) < SlotOverhead {
		return nil, false
	}
	body := slot[:len(slot)-slotTrailerSize]
	crc := binary.LittleEndian.Uint32(slot[len(slot)-slotTrailerSize:])
	if crc32.Checksum(body, slotTable) != crc {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(body)
	if int(n) > len(body)-slotHeaderSize {
		return nil, false
	}
	return body[slotHeaderSize : slotHeaderSize+int(n)], true
}

// packAnnounce frames a data-slot length announcement: [u32 L][u32 CRC].
func packAnnounce(length uint32) []byte {
	buf := make([]byte, AnnounceSlotSize)
	binary.LittleEndian.PutUint32(buf, length)
	crc := crc32.Checksum(buf[:4], slotTable)
	binary.LittleEndian.PutUint32(buf[4:], crc)
	return buf
}

// unpackAnnounce validates an announcement slot and returns the announced
// data-slot length.
func unpackAnnounce(slot []byte) (length uint32, ok bool) {
	if len(slot) != AnnounceSlotSize {
		return 0, false
	}
	if crc32.Checksum(slot[:4], slotTable) != binary.LittleEndian.Uint32(slot[4:]) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(slot), true
}

// isZeroSlot reports an idle slot (nobody transmitted).
func isZeroSlot(b []byte) bool { return crypto.IsZero(b) }
