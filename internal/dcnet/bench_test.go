package dcnet

import (
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topology"
)

// benchGroup runs `rounds` DC-net rounds for a group of size g.
func benchGroup(b *testing.B, g, rounds int, mode Mode, policy Policy) {
	b.Helper()
	topo, err := topology.Complete(g)
	if err != nil {
		b.Fatal(err)
	}
	all := make([]proto.NodeID, g)
	for i := range all {
		all[i] = proto.NodeID(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := sim.NewNetwork(topo, sim.Options{Seed: uint64(i + 1), Latency: sim.ConstLatency(time.Millisecond)})
		net.SetHandlers(func(id proto.NodeID) proto.Handler {
			m, err := NewMember(Config{
				Self: id, Members: all, Mode: mode, SlotSize: 256,
				Interval: 10 * time.Millisecond, Policy: policy,
			})
			if err != nil {
				b.Fatal(err)
			}
			return &memberHandler{m: m}
		})
		net.Start()
		net.RunUntil(time.Duration(rounds) * 10 * time.Millisecond)
	}
}

// BenchmarkRoundG5Fixed measures one idle fixed-mode round at k=5.
func BenchmarkRoundG5Fixed(b *testing.B) { benchGroup(b, 5, 1, ModeFixed, PolicyNone) }

// BenchmarkRoundG10Fixed measures the O(k²) growth at g=10.
func BenchmarkRoundG10Fixed(b *testing.B) { benchGroup(b, 10, 1, ModeFixed, PolicyNone) }

// BenchmarkRoundG10Blame adds the commitment exchange.
func BenchmarkRoundG10Blame(b *testing.B) { benchGroup(b, 10, 1, ModeFixed, PolicyBlame) }

// BenchmarkRoundG10Announce measures the §V-A idle-round optimization.
func BenchmarkRoundG10Announce(b *testing.B) { benchGroup(b, 10, 1, ModeAnnounce, PolicyNone) }

// BenchmarkSlotPack measures slot framing throughput.
func BenchmarkSlotPack(b *testing.B) {
	payload := make([]byte, 248)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		slot, err := packSlot(payload, 256)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := unpackSlot(slot); !ok {
			b.Fatal("unpack failed")
		}
	}
}
