package dcnet

import (
	"fmt"
	"slices"

	"repro/internal/proto"
	"repro/internal/relchan"
)

// Reliability layer (loss tolerance). The Fig.-4 round is a barrier on
// every peer's share and partials, so a single dropped message stalls
// the round for the whole group — the failure mode E15 exposed at ≥5%
// loss. When Config.RetransmitTimeout is set, every exchange message
// (share, S/T-partial, and the blame commitments/reveals) is tracked
// until the receiver acknowledges it. The tracking itself — per-peer
// pending maps, RTO retransmission under a bounded budget, nack
// fast-path — lives in the protocol-agnostic relchan.Channel; this file
// binds it to the DC-net's message identity and stall detection:
//
//   - a message is identified by (round, kind): each round sends at
//     most one message of each kind per directed peer pair, so the
//     existing round plumbing doubles as the retransmission index and
//     the exchange encodings stay byte-identical to the unreliable
//     protocol (the channel's stream coordinate is unused — rounds are
//     already globally ordered);
//   - the channel is configured with this package's compact AckMsg/
//     NackMsg constructors, so the ack traffic on the wire is also
//     byte-identical to the pre-extraction layer;
//   - a member whose round timer finds the previous round still missing
//     inputs nacks the owing peers, pulling a retransmission
//     immediately instead of waiting out the sender's timeout.
//
// Failover (membership layer, §IV-C). With Config.EvictAfter = K > 0 a
// stalled round is not fatal: when it exceeds Config.Timeout it is
// abandoned — every peer that stayed completely silent for the round
// (no share, no partial, not even an ack) is charged a miss, everyone
// else's miss counter resets — and the round sequence continues. A peer
// reaching K consecutive misses is evicted: the group re-keys around
// the survivors (fresh epoch, per-round share vectors regenerated over
// the shrunk membership, in-flight rounds discarded) and keeps running,
// unless the eviction would shrink the group below Config.MinMembers,
// in which case it dissolves and the membership layer re-forms it.
// Detection is symmetric — every member runs the same timers against
// the same observations, so a crashed peer is evicted by all survivors
// within one round of each other; a transiently inconsistent view
// cannot deliver (mismatched share vectors XOR to CRC-garbage, never to
// a forged message) and heals at the next abandon.

// dcID maps the DC-net's (round, kind) message identity onto the
// channel's generic coordinates.
func dcID(round uint32, kind uint8) relchan.ID {
	return relchan.ID{Seq: round, Kind: kind}
}

// newRelChannel builds the member's reliable channel, plugging in the
// DC-net's own compact ack/nack encodings so the wire surface matches
// the pre-relchan reliability layer byte-for-byte.
func newRelChannel(cfg *Config) *relchan.Channel {
	return relchan.New(relchan.Config{
		RTO:         cfg.RetransmitTimeout,
		RetryBudget: cfg.RetryBudget,
		MakeAck: func(id relchan.ID) proto.Message {
			return &AckMsg{Round: id.Seq, Kind: id.Kind}
		},
		MakeNack: func(id relchan.ID) proto.Message {
			return &NackMsg{Round: id.Seq, Kind: id.Kind}
		},
	})
}

// reliable reports whether the ack/retransmit layer is active.
func (m *Member) reliable() bool { return m.rel.Enabled() }

// failover reports whether stalled rounds are abandoned and silent
// peers evicted instead of the group dissolving on first stall.
func (m *Member) failover() bool { return m.cfg.EvictAfter > 0 }

// Retransmits returns the number of retransmissions performed.
func (m *Member) Retransmits() int { return m.rel.Retransmits }

// Nacks returns the number of retransmission requests sent.
func (m *Member) Nacks() int { return m.rel.Nacks }

// sendReliable transmits msg and, when the reliability layer is on,
// tracks it for acknowledgement under (round, kind).
func (m *Member) sendReliable(ctx proto.Context, to proto.NodeID, msg proto.Message, round uint32, kind uint8) {
	m.rel.Send(ctx, to, msg, dcID(round, kind))
}

// ackIncoming acknowledges a received reliable message and records the
// peer as alive for the round's silence accounting. It must run before
// any duplicate check: a duplicate means the previous ack was lost.
func (m *Member) ackIncoming(ctx proto.Context, from proto.NodeID, round uint32, kind uint8) {
	m.heard(from, round)
	m.rel.AckCopy(ctx, from, dcID(round, kind))
}

// heard marks peer activity for a round without creating round state
// for rounds already garbage-collected.
func (m *Member) heard(from proto.NodeID, round uint32) {
	if !m.failover() {
		return
	}
	rs := m.rounds[round]
	if rs == nil {
		return
	}
	if rs.heard == nil {
		rs.heard = make(map[proto.NodeID]bool, len(m.peers))
	}
	rs.heard[from] = true
}

func (m *Member) onAck(ctx proto.Context, from proto.NodeID, msg *AckMsg) {
	if m.stopped || !m.isPeer(from) || !m.reliable() {
		return
	}
	m.heard(from, msg.Round)
	m.rel.OnAck(ctx, from, dcID(msg.Round, msg.Kind))
}

func (m *Member) onNack(ctx proto.Context, from proto.NodeID, msg *NackMsg) {
	if m.stopped || !m.isPeer(from) || !m.reliable() {
		return
	}
	m.heard(from, msg.Round)
	m.rel.OnNack(ctx, from, dcID(msg.Round, msg.Kind))
}

// nackMissing asks the owing peers for the inputs a stalled round still
// lacks — invoked when the next round's timer fires and finds the
// previous round incomplete. Only inputs the round is actually waiting
// on are nacked: partials are requested only once this member's own
// barrier for the prior step has passed (before that the peer may
// legitimately not have sent them).
func (m *Member) nackMissing(ctx proto.Context, rs *roundState) {
	if !m.reliable() || rs.complete {
		return
	}
	for _, p := range m.peers {
		if _, ok := rs.gotShares[p]; !ok {
			m.rel.SendNack(ctx, p, dcID(rs.number, KindShare))
			continue
		}
		if rs.sSent {
			if _, ok := rs.gotSPart[p]; !ok {
				m.rel.SendNack(ctx, p, dcID(rs.number, KindSPartial))
				continue
			}
		}
		if rs.tSent {
			if _, ok := rs.gotTPart[p]; !ok {
				m.rel.SendNack(ctx, p, dcID(rs.number, KindTPartial))
			}
		}
	}
}

// dropRoundPending cancels retransmission state for one round.
func (m *Member) dropRoundPending(ctx proto.Context, round uint32) {
	m.rel.DropWhere(ctx, func(_ proto.NodeID, id relchan.ID) bool {
		return id.Seq == round
	})
}

// abandonRound gives up on a stalled round under failover: silence is
// charged, the round is closed as failed, and the round sequence moves
// on. Completion-blind peers (crashed or partitioned) accumulate misses
// here until evictSilent removes them.
func (m *Member) abandonRound(ctx proto.Context, rs *roundState) {
	rs.complete = true
	rs.failed = true
	m.RoundsAbandoned++
	m.dropRoundPending(ctx, rs.number)
	for _, p := range m.peers {
		if rs.heard[p] {
			m.missed[p] = 0
		} else {
			m.missed[p]++
		}
	}
	// An abandoned data round returns the reservation; the queued
	// payload re-bids at the next announcement.
	m.reserved = false
	m.nextKind = initialKind(m.cfg.Mode)

	m.evictSilent(ctx)
	if m.stopped {
		return
	}
	m.gc(rs.number)
	if m.deferred == rs.number+1 {
		next := m.deferred
		m.deferred = 0
		m.startRound(ctx, next)
	}
}

// evictSilent evicts every peer whose consecutive-miss count reached
// the threshold, in deterministic (sorted) order.
func (m *Member) evictSilent(ctx proto.Context) {
	for _, p := range slices.Clone(m.peers) {
		if m.stopped {
			return
		}
		if m.missed[p] >= m.cfg.EvictAfter {
			m.evict(ctx, p)
		}
	}
}

// evict removes a peer from the group: the membership shrinks, the
// epoch advances (re-key — subsequent rounds split fresh share vectors
// over the survivors), in-flight rounds are discarded, and the caller's
// OnEvict hook fires so the membership layer (directory/manager) can be
// told. Shrinking below MinMembers dissolves the group instead of
// running it under the configured anonymity floor.
func (m *Member) evict(ctx proto.Context, p proto.NodeID) {
	if !slices.Contains(m.peers, p) {
		return
	}
	if i := slices.Index(m.members, p); i >= 0 {
		m.members = slices.Delete(m.members, i, i+1)
	}
	if i := slices.Index(m.peers, p); i >= 0 {
		m.peers = slices.Delete(m.peers, i, i+1)
	}
	delete(m.missed, p)
	m.rel.DropPeer(ctx, p)
	m.epoch++
	m.Evictions++

	// Discard in-flight rounds: their barriers and share vectors were
	// sized to the old membership. The next scheduled round starts the
	// new epoch from a clean announce.
	for _, rs := range m.rounds {
		if rs.started && !rs.complete {
			rs.complete = true
			rs.failed = true
			if rs.hasTimeout {
				ctx.CancelTimer(rs.timeoutID)
				rs.hasTimeout = false
			}
			m.dropRoundPending(ctx, rs.number)
		}
		// Inputs already received from the evicted peer would skew the
		// exact-count barriers of rounds not yet started.
		delete(rs.gotShares, p)
		delete(rs.gotSPart, p)
		delete(rs.gotTPart, p)
		delete(rs.gotCommits, p)
		delete(rs.gotReveals, p)
		delete(rs.heard, p)
	}
	m.reserved = false
	m.nextKind = initialKind(m.cfg.Mode)
	if m.blameRound != 0 {
		// A blame phase waiting on the evicted peer's reveal can never
		// finish; the failed round it was judging is gone with the epoch.
		m.blameRound = 0
	}

	if m.cfg.OnEvict != nil {
		m.cfg.OnEvict(ctx, p, slices.Clone(m.members))
	}
	if len(m.members) < m.cfg.MinMembers {
		m.dissolve(ctx, fmt.Sprintf("group of %d below floor %d after evicting %d",
			len(m.members), m.cfg.MinMembers, p))
	}
}
