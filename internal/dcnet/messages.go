package dcnet

import (
	"repro/internal/proto"
	"repro/internal/wire"
)

// Wire types of DC-net messages. One round of the Fig.-4 algorithm is
// three pairwise exchanges (Share, SPartial, TPartial); Commit and Reveal
// belong to the blame extension (§V-C).
const (
	// TypeShare is step 2: the random share rᵢ sent to each peer.
	TypeShare = proto.RangeDCNet + 1
	// TypeSPartial is step 5: S ⊕ sᵢ returned to each peer.
	TypeSPartial = proto.RangeDCNet + 2
	// TypeTPartial is step 8: T ⊕ tᵢ returned to each peer.
	TypeTPartial = proto.RangeDCNet + 3
	// TypeCommit carries per-share commitments (blame mode).
	TypeCommit = proto.RangeDCNet + 4
	// TypeReveal opens a round's shares during a blame phase.
	TypeReveal = proto.RangeDCNet + 5
	// TypeAck confirms receipt of one reliable exchange message
	// (reliability layer; see Config.RetransmitTimeout).
	TypeAck = proto.RangeDCNet + 6
	// TypeNack requests retransmission of one missing exchange message.
	TypeNack = proto.RangeDCNet + 7
)

// Kind tags which exchange message an Ack/Nack refers to. A round sends
// at most one message of each kind per directed peer pair, so
// (round, kind) identifies a reliable message without adding sequence
// numbers to the exchange messages themselves (their encodings — and
// therefore every zero-impairment byte table — stay untouched).
const (
	// KindShare tags the step-2 share.
	KindShare uint8 = iota + 1
	// KindSPartial tags the step-5 S-partial.
	KindSPartial
	// KindTPartial tags the step-8 T-partial.
	KindTPartial
	// KindCommit tags the blame-mode commitment.
	KindCommit
	// KindReveal tags the blame-phase opening.
	KindReveal
)

// AckMsg confirms receipt of the (Round, Kind) exchange message. Sent
// for every received copy — a duplicate receipt means the earlier ack
// was probably lost, so it is re-acknowledged. Acks are themselves
// unreliable; a lost ack merely costs one retransmission.
type AckMsg struct {
	Round uint32
	Kind  uint8
}

// Type implements proto.Message.
func (*AckMsg) Type() proto.MsgType { return TypeAck }

// EncodeTo implements wire.Encodable.
func (m *AckMsg) EncodeTo(w *wire.Writer) {
	w.U32(m.Round)
	w.U8(m.Kind)
}

// DecodeFrom implements wire.Encodable.
func (m *AckMsg) DecodeFrom(r *wire.Reader) error {
	m.Round = r.U32()
	m.Kind = r.U8()
	return r.Err()
}

// NackMsg asks the receiver to retransmit its (Round, Kind) message —
// the fast-path recovery a stalled member sends when the next round's
// timer finds the previous round still missing inputs; the sender-side
// retransmit timeout remains the backstop.
type NackMsg struct {
	Round uint32
	Kind  uint8
}

// Type implements proto.Message.
func (*NackMsg) Type() proto.MsgType { return TypeNack }

// EncodeTo implements wire.Encodable.
func (m *NackMsg) EncodeTo(w *wire.Writer) {
	w.U32(m.Round)
	w.U8(m.Kind)
}

// DecodeFrom implements wire.Encodable.
func (m *NackMsg) DecodeFrom(r *wire.Reader) error {
	m.Round = r.U32()
	m.Kind = r.U8()
	return r.Err()
}

// ShareMsg is one member's share for one peer in one round. Data is the
// raw share, or its AEAD sealing when pairwise channels are configured.
type ShareMsg struct {
	Round uint32
	Data  []byte
}

// Type implements proto.Message.
func (*ShareMsg) Type() proto.MsgType { return TypeShare }

// EncodeTo implements wire.Encodable.
func (m *ShareMsg) EncodeTo(w *wire.Writer) {
	w.U32(m.Round)
	w.ByteString(m.Data)
}

// DecodeFrom implements wire.Encodable.
func (m *ShareMsg) DecodeFrom(r *wire.Reader) error {
	m.Round = r.U32()
	m.Data = r.ByteString()
	return r.Err()
}

// SPartialMsg is the first accumulation exchange.
type SPartialMsg struct {
	Round uint32
	Data  []byte
}

// Type implements proto.Message.
func (*SPartialMsg) Type() proto.MsgType { return TypeSPartial }

// EncodeTo implements wire.Encodable.
func (m *SPartialMsg) EncodeTo(w *wire.Writer) {
	w.U32(m.Round)
	w.ByteString(m.Data)
}

// DecodeFrom implements wire.Encodable.
func (m *SPartialMsg) DecodeFrom(r *wire.Reader) error {
	m.Round = r.U32()
	m.Data = r.ByteString()
	return r.Err()
}

// TPartialMsg is the second accumulation exchange.
type TPartialMsg struct {
	Round uint32
	Data  []byte
}

// Type implements proto.Message.
func (*TPartialMsg) Type() proto.MsgType { return TypeTPartial }

// EncodeTo implements wire.Encodable.
func (m *TPartialMsg) EncodeTo(w *wire.Writer) {
	w.U32(m.Round)
	w.ByteString(m.Data)
}

// DecodeFrom implements wire.Encodable.
func (m *TPartialMsg) DecodeFrom(r *wire.Reader) error {
	m.Round = r.U32()
	m.Data = r.ByteString()
	return r.Err()
}

// CommitMsg carries a member's commitments to all its shares of a round,
// ordered by the member-index of the receiving peer (self skipped).
type CommitMsg struct {
	Round   uint32
	Digests [][32]byte
}

// Type implements proto.Message.
func (*CommitMsg) Type() proto.MsgType { return TypeCommit }

// EncodeTo implements wire.Encodable.
func (m *CommitMsg) EncodeTo(w *wire.Writer) {
	w.U32(m.Round)
	w.Uvarint(uint64(len(m.Digests)))
	for _, d := range m.Digests {
		w.Bytes32(d)
	}
}

// DecodeFrom implements wire.Encodable.
func (m *CommitMsg) DecodeFrom(r *wire.Reader) error {
	m.Round = r.U32()
	n := r.Uvarint()
	if n > 1024 {
		return wire.ErrOverflow
	}
	m.Digests = make([][32]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Digests = append(m.Digests, r.Bytes32())
	}
	return r.Err()
}

// RevealMsg opens a member's shares and salts for a blamed round, ordered
// like CommitMsg.Digests.
type RevealMsg struct {
	Round  uint32
	Shares [][]byte
	Salts  [][]byte
}

// Type implements proto.Message.
func (*RevealMsg) Type() proto.MsgType { return TypeReveal }

// EncodeTo implements wire.Encodable.
func (m *RevealMsg) EncodeTo(w *wire.Writer) {
	w.U32(m.Round)
	w.Uvarint(uint64(len(m.Shares)))
	for _, s := range m.Shares {
		w.ByteString(s)
	}
	w.Uvarint(uint64(len(m.Salts)))
	for _, s := range m.Salts {
		w.ByteString(s)
	}
}

// DecodeFrom implements wire.Encodable.
func (m *RevealMsg) DecodeFrom(r *wire.Reader) error {
	m.Round = r.U32()
	n := r.Uvarint()
	if n > 1024 {
		return wire.ErrOverflow
	}
	m.Shares = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Shares = append(m.Shares, r.ByteString())
	}
	n = r.Uvarint()
	if n > 1024 {
		return wire.ErrOverflow
	}
	m.Salts = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Salts = append(m.Salts, r.ByteString())
	}
	return r.Err()
}

// RegisterMessages adds this package's messages to a codec.
func RegisterMessages(c *wire.Codec) {
	c.Register(TypeShare, func() wire.Encodable { return new(ShareMsg) })
	c.Register(TypeSPartial, func() wire.Encodable { return new(SPartialMsg) })
	c.Register(TypeTPartial, func() wire.Encodable { return new(TPartialMsg) })
	c.Register(TypeCommit, func() wire.Encodable { return new(CommitMsg) })
	c.Register(TypeReveal, func() wire.Encodable { return new(RevealMsg) })
	c.Register(TypeAck, func() wire.Encodable { return new(AckMsg) })
	c.Register(TypeNack, func() wire.Encodable { return new(NackMsg) })
}

// Compile-time interface checks.
var (
	_ wire.Encodable = (*ShareMsg)(nil)
	_ wire.Encodable = (*SPartialMsg)(nil)
	_ wire.Encodable = (*TPartialMsg)(nil)
	_ wire.Encodable = (*CommitMsg)(nil)
	_ wire.Encodable = (*RevealMsg)(nil)
	_ wire.Encodable = (*AckMsg)(nil)
	_ wire.Encodable = (*NackMsg)(nil)
)
