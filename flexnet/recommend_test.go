package flexnet

import (
	"math"
	"testing"
	"time"
)

func TestRecommendParamsFloors(t *testing.T) {
	cases := []struct {
		floor float64
		f     float64
		minK  int
	}{
		{0.25, 0.2, 4}, // ℓ ≥ 4 honest → k ≥ 4 at f=0.2 (ceil(4·0.8)=4)
		{0.2, 0.0, 5},  // ℓ ≥ 5 honest, nobody corrupted → k = 5
		{0.1, 0.5, 19}, // ℓ ≥ 10 honest at f=0.5 → k ≥ 19 (ceil(19·0.5)=10)
	}
	for _, c := range cases {
		rec, err := RecommendParams(AdvisorInput{TargetFloor: c.floor, AdversaryFraction: c.f})
		if err != nil {
			t.Fatal(err)
		}
		if rec.K < c.minK {
			t.Errorf("floor %v f %v: K = %d, want ≥ %d", c.floor, c.f, rec.K, c.minK)
		}
		if rec.PredictedFloor > c.floor+1e-9 {
			t.Errorf("floor %v: predicted %v exceeds target", c.floor, rec.PredictedFloor)
		}
		// Check the floor formula directly.
		honest := int(math.Ceil(float64(rec.K) * (1 - c.f)))
		if got := 1 / float64(honest); math.Abs(got-rec.PredictedFloor) > 1e-9 {
			t.Errorf("PredictedFloor = %v, formula gives %v", rec.PredictedFloor, got)
		}
	}
}

func TestRecommendParamsCoverage(t *testing.T) {
	rec, err := RecommendParams(AdvisorInput{N: 1000, Degree: 8, CoverFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.PredictedBallSize < 100 {
		t.Errorf("ball %d below 10%% of 1000", rec.PredictedBallSize)
	}
	// d should be minimal: the next smaller ball must be under target.
	if rec.D > 1 && ballSizeOn(8, rec.D-1) >= 100 {
		t.Errorf("D = %d not minimal", rec.D)
	}
	if rec.PredictedLatency <= 0 || rec.PredictedLatency > time.Minute {
		t.Errorf("implausible latency %v", rec.PredictedLatency)
	}
	if rec.PredictedPhase1MsgsPerRound != 3*rec.K*(rec.K-1) {
		t.Errorf("phase-1 cost %d != 3k(k−1)", rec.PredictedPhase1MsgsPerRound)
	}
}

func TestRecommendParamsValidation(t *testing.T) {
	if _, err := RecommendParams(AdvisorInput{TargetFloor: 1.5}); err == nil {
		t.Error("TargetFloor > 1 accepted")
	}
	if _, err := RecommendParams(AdvisorInput{TargetFloor: 0.2, AdversaryFraction: -0.1}); err == nil {
		t.Error("negative adversary fraction accepted")
	}
}

func TestBallSizeOnMatchesLineAndTree(t *testing.T) {
	if got := ballSizeOn(2, 5); got != 10 {
		t.Errorf("line ball = %d, want 10", got)
	}
	if got := ballSizeOn(3, 2); got != 9 {
		t.Errorf("tree ball = %d, want 9", got)
	}
	if got := ballSizeOn(8, 0); got != 0 {
		t.Errorf("zero-radius ball = %d", got)
	}
}
