package flexnet

import (
	"math"
	"testing"
	"time"
)

func TestRecommendParamsFloors(t *testing.T) {
	cases := []struct {
		floor float64
		f     float64
		minK  int
	}{
		{0.25, 0.2, 4}, // ℓ ≥ 4 honest → k ≥ 4 at f=0.2 (ceil(4·0.8)=4)
		{0.2, 0.0, 5},  // ℓ ≥ 5 honest, nobody corrupted → k = 5
		{0.1, 0.5, 19}, // ℓ ≥ 10 honest at f=0.5 → k ≥ 19 (ceil(19·0.5)=10)
	}
	for _, c := range cases {
		rec, err := RecommendParams(AdvisorInput{TargetFloor: c.floor, AdversaryFraction: c.f})
		if err != nil {
			t.Fatal(err)
		}
		if rec.K < c.minK {
			t.Errorf("floor %v f %v: K = %d, want ≥ %d", c.floor, c.f, rec.K, c.minK)
		}
		if rec.PredictedFloor > c.floor+1e-9 {
			t.Errorf("floor %v: predicted %v exceeds target", c.floor, rec.PredictedFloor)
		}
		// Check the floor formula directly.
		honest := int(math.Ceil(float64(rec.K) * (1 - c.f)))
		if got := 1 / float64(honest); math.Abs(got-rec.PredictedFloor) > 1e-9 {
			t.Errorf("PredictedFloor = %v, formula gives %v", rec.PredictedFloor, got)
		}
	}
}

func TestRecommendParamsCoverage(t *testing.T) {
	rec, err := RecommendParams(AdvisorInput{N: 1000, Degree: 8, CoverFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.PredictedBallSize < 100 {
		t.Errorf("ball %d below 10%% of 1000", rec.PredictedBallSize)
	}
	// d should be minimal: the next smaller ball must be under target.
	if rec.D > 1 && ballSizeOn(8, rec.D-1) >= 100 {
		t.Errorf("D = %d not minimal", rec.D)
	}
	if rec.PredictedLatency <= 0 || rec.PredictedLatency > time.Minute {
		t.Errorf("implausible latency %v", rec.PredictedLatency)
	}
	if rec.PredictedPhase1MsgsPerRound != 3*rec.K*(rec.K-1) {
		t.Errorf("phase-1 cost %d != 3k(k−1)", rec.PredictedPhase1MsgsPerRound)
	}
}

func TestRecommendParamsValidation(t *testing.T) {
	if _, err := RecommendParams(AdvisorInput{TargetFloor: 1.5}); err == nil {
		t.Error("TargetFloor > 1 accepted")
	}
	if _, err := RecommendParams(AdvisorInput{TargetFloor: 0.2, AdversaryFraction: -0.1}); err == nil {
		t.Error("negative adversary fraction accepted")
	}
	if _, err := RecommendParams(AdvisorInput{LossRate: 1.0}); err == nil {
		t.Error("LossRate = 1 accepted")
	}
	if _, err := RecommendParams(AdvisorInput{LossRate: -0.1}); err == nil {
		t.Error("negative LossRate accepted")
	}
}

// TestRecommendParamsLoss is the table-driven check of the loss-aware
// advisor: the effective degree Degree·(1−loss) drives the ball (and
// hence d), and the per-hop flood latency degrades by the 1/(1−loss)
// retransmission factor. Zero loss must reproduce the lossless
// recommendation exactly.
func TestRecommendParamsLoss(t *testing.T) {
	base := AdvisorInput{N: 1000, Degree: 8, CoverFraction: 0.1}
	cases := []struct {
		loss    float64
		wantDeg int // effective degree the plan must use
	}{
		{0, 8},
		{0.05, 7}, // 8·0.95 = 7.6 → 7
		{0.25, 6}, // 8·0.75 = 6
		{0.5, 4},  // 8·0.5 = 4
		{0.95, 2}, // floor clamps at the line graph
	}
	var lossless *Recommendation
	prev := time.Duration(0)
	prevD := 0
	for _, c := range cases {
		in := base
		in.LossRate = c.loss
		rec, err := RecommendParams(in)
		if err != nil {
			t.Fatalf("loss %v: %v", c.loss, err)
		}
		// d minimal on the effective-degree tree, and the ball read off
		// the same tree.
		if rec.PredictedBallSize != ballSizeOn(c.wantDeg, rec.D) {
			t.Errorf("loss %v: ball %d not computed on effective degree %d",
				c.loss, rec.PredictedBallSize, c.wantDeg)
		}
		if rec.PredictedBallSize < 100 {
			t.Errorf("loss %v: ball %d misses the 10%% cover target", c.loss, rec.PredictedBallSize)
		}
		if rec.D > 1 && ballSizeOn(c.wantDeg, rec.D-1) >= 100 {
			t.Errorf("loss %v: D = %d not minimal", c.loss, rec.D)
		}
		// Degradation is monotone: more loss never yields a faster plan
		// or a shallower diffusion.
		if rec.PredictedLatency < prev {
			t.Errorf("loss %v: latency %v improved on %v at lower loss", c.loss, rec.PredictedLatency, prev)
		}
		if rec.D < prevD {
			t.Errorf("loss %v: D = %d shallower than %d at lower loss", c.loss, rec.D, prevD)
		}
		prev, prevD = rec.PredictedLatency, rec.D
		if c.loss == 0 {
			lossless = rec
		}
		// Loss must not touch the privacy side of the plan.
		if rec.K != lossless.K || rec.PredictedFloor != lossless.PredictedFloor {
			t.Errorf("loss %v: privacy parameters drifted (k %d, floor %v)", c.loss, rec.K, rec.PredictedFloor)
		}
	}
	// Spot-check the retransmission factor: at 50% loss the flood term
	// doubles per hop, so with intervals zeroed out the latency is
	// exactly floodHops·hop·2 ... asserted via the lossless ratio on
	// the flood-only configuration.
	floodOnly := AdvisorInput{N: 1000, Degree: 8, CoverFraction: 0.1,
		DCInterval: time.Nanosecond, ADInterval: time.Nanosecond, LatencyMs: 100}
	clean, err := RecommendParams(floodOnly)
	if err != nil {
		t.Fatal(err)
	}
	floodOnly.LossRate = 0.5
	lossy, err := RecommendParams(floodOnly)
	if err != nil {
		t.Fatal(err)
	}
	// Effective degree halves (8→4), so hops go from ceil(log7 1000)=4
	// to ceil(log3 1000)=7, each at double cost: 1400ms vs 400ms.
	wantClean := 4 * 100 * time.Millisecond
	wantLossy := 7 * 200 * time.Millisecond
	round := func(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
	if round(clean.PredictedLatency) != wantClean {
		t.Errorf("clean flood latency %v, want %v", round(clean.PredictedLatency), wantClean)
	}
	if round(lossy.PredictedLatency) != wantLossy {
		t.Errorf("lossy flood latency %v, want %v", round(lossy.PredictedLatency), wantLossy)
	}
}

func TestBallSizeOnMatchesLineAndTree(t *testing.T) {
	if got := ballSizeOn(2, 5); got != 10 {
		t.Errorf("line ball = %d, want 10", got)
	}
	if got := ballSizeOn(3, 2); got != 9 {
		t.Errorf("tree ball = %d, want 9", got)
	}
	if got := ballSizeOn(8, 0); got != 0 {
		t.Errorf("zero-radius ball = %d", got)
	}
}

// TestRecommendParamsSustainedRate is the table-driven check of the
// rate-aware advisor: zero rate reproduces the classic plan exactly,
// moderate utilization (ρ ≤ 0.5) costs latency only via the 1/(1−ρ)
// queueing factor, high utilization also thins the usable fanout
// (deepening d), and offered load at or above LinkCapacity is rejected.
func TestRecommendParamsSustainedRate(t *testing.T) {
	base := AdvisorInput{N: 1000, Degree: 8, CoverFraction: 0.1}
	classic, err := RecommendParams(base)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		rate, cap float64
		wantRho   float64
		wantDeg   int // effective degree the plan must use
	}{
		{"zero rate unchanged", 0, 0, 0, 8},
		{"moderate load latency only", 250, 1000, 0.25, 8},
		{"half load latency only", 500, 1000, 0.5, 8},
		{"heavy load thins fanout", 800, 1000, 0.8, 3}, // 8·2(1−0.8) = 3.2 → 3
		{"default capacity applies", 400, 0, 0.4, 8},   // cap defaults to 1000
	}
	for _, c := range cases {
		in := base
		in.SustainedRate, in.LinkCapacity = c.rate, c.cap
		rec, err := RecommendParams(in)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(rec.PredictedUtilization-c.wantRho) > 1e-9 {
			t.Errorf("%s: utilization %v, want %v", c.name, rec.PredictedUtilization, c.wantRho)
		}
		if rec.PredictedBallSize != ballSizeOn(c.wantDeg, rec.D) {
			t.Errorf("%s: ball %d not computed on effective degree %d",
				c.name, rec.PredictedBallSize, c.wantDeg)
		}
		if rec.D > 1 && ballSizeOn(c.wantDeg, rec.D-1) >= 100 {
			t.Errorf("%s: D = %d not minimal", c.name, rec.D)
		}
		// Load must not touch the privacy side of the plan.
		if rec.K != classic.K || rec.PredictedFloor != classic.PredictedFloor {
			t.Errorf("%s: privacy parameters drifted (k %d, floor %v)", c.name, rec.K, rec.PredictedFloor)
		}
		if c.wantRho == 0 {
			if rec.PredictedLatency != classic.PredictedLatency || rec.D != classic.D {
				t.Errorf("%s: zero-rate plan drifted from classic", c.name)
			}
		} else {
			if rec.PredictedLatency <= classic.PredictedLatency {
				t.Errorf("%s: latency %v did not degrade past classic %v",
					c.name, rec.PredictedLatency, classic.PredictedLatency)
			}
		}
		if c.wantDeg == 8 && rec.D != classic.D {
			t.Errorf("%s: moderate load deepened d (%d vs %d)", c.name, rec.D, classic.D)
		}
		if c.wantDeg < 8 && rec.D <= classic.D {
			t.Errorf("%s: heavy load kept d at %d, want deeper than %d", c.name, rec.D, classic.D)
		}
	}
	// Queueing factor spot check: flood-only plan at ρ = 0.5 doubles
	// every hop, so latency doubles against the classic flood.
	floodOnly := AdvisorInput{N: 1000, Degree: 8, CoverFraction: 0.1,
		DCInterval: time.Nanosecond, ADInterval: time.Nanosecond, LatencyMs: 100}
	clean, err := RecommendParams(floodOnly)
	if err != nil {
		t.Fatal(err)
	}
	floodOnly.SustainedRate, floodOnly.LinkCapacity = 500, 1000
	loaded, err := RecommendParams(floodOnly)
	if err != nil {
		t.Fatal(err)
	}
	round := func(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
	if round(loaded.PredictedLatency) != 2*round(clean.PredictedLatency) {
		t.Errorf("ρ=0.5 flood latency %v, want double %v",
			round(loaded.PredictedLatency), round(clean.PredictedLatency))
	}
	// Over capacity: no stable plan.
	for _, rate := range []float64{1000, 1500} {
		in := base
		in.SustainedRate, in.LinkCapacity = rate, 1000
		if _, err := RecommendParams(in); err == nil {
			t.Errorf("rate %v at capacity 1000 accepted", rate)
		}
	}
	if _, err := RecommendParams(AdvisorInput{SustainedRate: -1}); err == nil {
		t.Error("negative SustainedRate accepted")
	}
}
