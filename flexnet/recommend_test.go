package flexnet

import (
	"math"
	"testing"
	"time"
)

func TestRecommendParamsFloors(t *testing.T) {
	cases := []struct {
		floor float64
		f     float64
		minK  int
	}{
		{0.25, 0.2, 4}, // ℓ ≥ 4 honest → k ≥ 4 at f=0.2 (ceil(4·0.8)=4)
		{0.2, 0.0, 5},  // ℓ ≥ 5 honest, nobody corrupted → k = 5
		{0.1, 0.5, 19}, // ℓ ≥ 10 honest at f=0.5 → k ≥ 19 (ceil(19·0.5)=10)
	}
	for _, c := range cases {
		rec, err := RecommendParams(AdvisorInput{TargetFloor: c.floor, AdversaryFraction: c.f})
		if err != nil {
			t.Fatal(err)
		}
		if rec.K < c.minK {
			t.Errorf("floor %v f %v: K = %d, want ≥ %d", c.floor, c.f, rec.K, c.minK)
		}
		if rec.PredictedFloor > c.floor+1e-9 {
			t.Errorf("floor %v: predicted %v exceeds target", c.floor, rec.PredictedFloor)
		}
		// Check the floor formula directly.
		honest := int(math.Ceil(float64(rec.K) * (1 - c.f)))
		if got := 1 / float64(honest); math.Abs(got-rec.PredictedFloor) > 1e-9 {
			t.Errorf("PredictedFloor = %v, formula gives %v", rec.PredictedFloor, got)
		}
	}
}

func TestRecommendParamsCoverage(t *testing.T) {
	rec, err := RecommendParams(AdvisorInput{N: 1000, Degree: 8, CoverFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.PredictedBallSize < 100 {
		t.Errorf("ball %d below 10%% of 1000", rec.PredictedBallSize)
	}
	// d should be minimal: the next smaller ball must be under target.
	if rec.D > 1 && ballSizeOn(8, rec.D-1) >= 100 {
		t.Errorf("D = %d not minimal", rec.D)
	}
	if rec.PredictedLatency <= 0 || rec.PredictedLatency > time.Minute {
		t.Errorf("implausible latency %v", rec.PredictedLatency)
	}
	if rec.PredictedPhase1MsgsPerRound != 3*rec.K*(rec.K-1) {
		t.Errorf("phase-1 cost %d != 3k(k−1)", rec.PredictedPhase1MsgsPerRound)
	}
}

func TestRecommendParamsValidation(t *testing.T) {
	if _, err := RecommendParams(AdvisorInput{TargetFloor: 1.5}); err == nil {
		t.Error("TargetFloor > 1 accepted")
	}
	if _, err := RecommendParams(AdvisorInput{TargetFloor: 0.2, AdversaryFraction: -0.1}); err == nil {
		t.Error("negative adversary fraction accepted")
	}
	if _, err := RecommendParams(AdvisorInput{LossRate: 1.0}); err == nil {
		t.Error("LossRate = 1 accepted")
	}
	if _, err := RecommendParams(AdvisorInput{LossRate: -0.1}); err == nil {
		t.Error("negative LossRate accepted")
	}
}

// TestRecommendParamsLoss is the table-driven check of the loss-aware
// advisor: the effective degree Degree·(1−loss) drives the ball (and
// hence d), and the per-hop flood latency degrades by the 1/(1−loss)
// retransmission factor. Zero loss must reproduce the lossless
// recommendation exactly.
func TestRecommendParamsLoss(t *testing.T) {
	base := AdvisorInput{N: 1000, Degree: 8, CoverFraction: 0.1}
	cases := []struct {
		loss    float64
		wantDeg int // effective degree the plan must use
	}{
		{0, 8},
		{0.05, 7}, // 8·0.95 = 7.6 → 7
		{0.25, 6}, // 8·0.75 = 6
		{0.5, 4},  // 8·0.5 = 4
		{0.95, 2}, // floor clamps at the line graph
	}
	var lossless *Recommendation
	prev := time.Duration(0)
	prevD := 0
	for _, c := range cases {
		in := base
		in.LossRate = c.loss
		rec, err := RecommendParams(in)
		if err != nil {
			t.Fatalf("loss %v: %v", c.loss, err)
		}
		// d minimal on the effective-degree tree, and the ball read off
		// the same tree.
		if rec.PredictedBallSize != ballSizeOn(c.wantDeg, rec.D) {
			t.Errorf("loss %v: ball %d not computed on effective degree %d",
				c.loss, rec.PredictedBallSize, c.wantDeg)
		}
		if rec.PredictedBallSize < 100 {
			t.Errorf("loss %v: ball %d misses the 10%% cover target", c.loss, rec.PredictedBallSize)
		}
		if rec.D > 1 && ballSizeOn(c.wantDeg, rec.D-1) >= 100 {
			t.Errorf("loss %v: D = %d not minimal", c.loss, rec.D)
		}
		// Degradation is monotone: more loss never yields a faster plan
		// or a shallower diffusion.
		if rec.PredictedLatency < prev {
			t.Errorf("loss %v: latency %v improved on %v at lower loss", c.loss, rec.PredictedLatency, prev)
		}
		if rec.D < prevD {
			t.Errorf("loss %v: D = %d shallower than %d at lower loss", c.loss, rec.D, prevD)
		}
		prev, prevD = rec.PredictedLatency, rec.D
		if c.loss == 0 {
			lossless = rec
		}
		// Loss must not touch the privacy side of the plan.
		if rec.K != lossless.K || rec.PredictedFloor != lossless.PredictedFloor {
			t.Errorf("loss %v: privacy parameters drifted (k %d, floor %v)", c.loss, rec.K, rec.PredictedFloor)
		}
	}
	// Spot-check the retransmission factor: at 50% loss the flood term
	// doubles per hop, so with intervals zeroed out the latency is
	// exactly floodHops·hop·2 ... asserted via the lossless ratio on
	// the flood-only configuration.
	floodOnly := AdvisorInput{N: 1000, Degree: 8, CoverFraction: 0.1,
		DCInterval: time.Nanosecond, ADInterval: time.Nanosecond, LatencyMs: 100}
	clean, err := RecommendParams(floodOnly)
	if err != nil {
		t.Fatal(err)
	}
	floodOnly.LossRate = 0.5
	lossy, err := RecommendParams(floodOnly)
	if err != nil {
		t.Fatal(err)
	}
	// Effective degree halves (8→4), so hops go from ceil(log7 1000)=4
	// to ceil(log3 1000)=7, each at double cost: 1400ms vs 400ms.
	wantClean := 4 * 100 * time.Millisecond
	wantLossy := 7 * 200 * time.Millisecond
	round := func(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
	if round(clean.PredictedLatency) != wantClean {
		t.Errorf("clean flood latency %v, want %v", round(clean.PredictedLatency), wantClean)
	}
	if round(lossy.PredictedLatency) != wantLossy {
		t.Errorf("lossy flood latency %v, want %v", round(lossy.PredictedLatency), wantLossy)
	}
}

func TestBallSizeOnMatchesLineAndTree(t *testing.T) {
	if got := ballSizeOn(2, 5); got != 10 {
		t.Errorf("line ball = %d, want 10", got)
	}
	if got := ballSizeOn(3, 2); got != 9 {
		t.Errorf("tree ball = %d, want 9", got)
	}
	if got := ballSizeOn(8, 0); got != 0 {
		t.Errorf("zero-radius ball = %d", got)
	}
}
