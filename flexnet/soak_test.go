package flexnet

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// TestSoakClusterSmoke runs a small sustained stream over a real local
// TCP cluster with the admission layer mounted and checks the report's
// internal consistency: everything unique delivered everywhere, latency
// sketch populated, frame counters moving.
func TestSoakClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and wall-clock sleeps; run without -short")
	}
	rep, err := SoakCluster(ClusterSoakConfig{
		N:          6,
		GroupSize:  4,
		DCInterval: 200 * time.Millisecond,
		Spec:       workload.Spec{Rate: 15, Resubmit: 0.2},
		Duration:   time.Second,
		Drain:      30 * time.Second,
		Seed:       7,
		Admission:  &workload.AdmissionConfig{QueueCap: 64, Policy: workload.DropOldest},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unique == 0 || rep.Submitted < rep.Unique {
		t.Fatalf("implausible submission counts: %+v", rep)
	}
	if rep.Coverage < 0.99 {
		t.Fatalf("coverage %.3f, want ≥ 0.99 (delivered %d of %d)",
			rep.Coverage, rep.Delivered, rep.Unique*6)
	}
	if rep.Latency.Count() == 0 || rep.P99() <= 0 || rep.P50() > rep.P99() {
		t.Fatalf("latency sketch inconsistent: count %d p50 %v p99 %v",
			rep.Latency.Count(), rep.P50(), rep.P99())
	}
	if rep.Admission.Admitted == 0 {
		t.Fatalf("admission layer saw no traffic: %+v", rep.Admission)
	}
	if rep.Frames == 0 || rep.MsgsPerNodePerSec <= 0 {
		t.Fatalf("frame accounting empty: %+v", rep)
	}
}
