package flexnet

import (
	"errors"
	"math"
	"time"
)

// Recommendation is a parameter choice produced by RecommendParams,
// answering the paper's concluding goal of giving "application designers
// … data to choose suitable and safe parameters".
type Recommendation struct {
	// K is the anonymity parameter (group sizes in [K, 2K−1]).
	K int
	// D is the number of adaptive-diffusion rounds.
	D int
	// PredictedFloor is the worst-case deanonymization probability the
	// DC-net phase guarantees: 1/ℓ for ℓ expected honest members in the
	// smallest (size-K) group.
	PredictedFloor float64
	// PredictedBallSize is the expected adaptive-diffusion anonymity
	// set after D rounds on a degree-Degree overlay.
	PredictedBallSize int
	// PredictedLatency estimates submission-to-coverage time.
	PredictedLatency time.Duration
	// PredictedPhase1MsgsPerRound is the periodic group cost 3·g·(g−1)
	// at g = K.
	PredictedPhase1MsgsPerRound int
	// PredictedUtilization is the planned per-link load fraction
	// ρ = SustainedRate/LinkCapacity (0 when no sustained rate given).
	PredictedUtilization float64
}

// AdvisorInput describes the deployment RecommendParams plans for.
type AdvisorInput struct {
	// N and Degree describe the overlay (defaults 1000 and 8).
	N, Degree int
	// AdversaryFraction is the assumed corrupted-node fraction f. Zero
	// means planning for a purely external observer (no corrupted group
	// members).
	AdversaryFraction float64
	// TargetFloor is the highest acceptable worst-case deanonymization
	// probability (default 0.2, i.e. 5-anonymity among honest members).
	TargetFloor float64
	// CoverFraction is the fraction of the network the diffusion phase
	// should cover before the flood (default 0.1).
	CoverFraction float64
	// DCInterval and ADInterval are the phase cadences (defaults 2 s and
	// 500 ms).
	DCInterval, ADInterval time.Duration
	// LatencyMs is the per-hop latency (default 50).
	LatencyMs int
	// LossRate is the expected per-link message loss probability in
	// [0,1) (e.g. a netem profile's Loss). Loss thins the overlay the
	// diffusion ball grows on — the advisor plans with an effective
	// degree of Degree·(1−loss), deepening d to keep the coverage
	// target — and degrades PredictedLatency by the expected
	// 1/(1−loss) retransmission factor per hop.
	LossRate float64
	// SustainedRate is the open-world transaction rate (tx/s) the
	// deployment must absorb continuously. Zero keeps the classic
	// single-broadcast plan. A positive rate is compared against
	// LinkCapacity: utilization ρ = SustainedRate/LinkCapacity inflates
	// per-hop latency by the M/M/1 queueing factor 1/(1−ρ), and past
	// 50% utilization the usable fanout shrinks linearly (a saturated
	// link can no longer serve its full neighbor burst in time), which
	// deepens d. ρ ≥ 1 is over capacity and rejected.
	SustainedRate float64
	// LinkCapacity is one directed link's sustainable message rate in
	// msgs/s (default 1000). Only consulted when SustainedRate > 0.
	LinkCapacity float64
}

func (in *AdvisorInput) applyDefaults() {
	if in.N == 0 {
		in.N = 1000
	}
	if in.Degree == 0 {
		in.Degree = 8
	}
	if in.TargetFloor == 0 {
		in.TargetFloor = 0.2
	}
	if in.CoverFraction == 0 {
		in.CoverFraction = 0.1
	}
	if in.DCInterval == 0 {
		in.DCInterval = 2 * time.Second
	}
	if in.ADInterval == 0 {
		in.ADInterval = 500 * time.Millisecond
	}
	if in.LatencyMs == 0 {
		in.LatencyMs = 50
	}
	if in.LinkCapacity == 0 {
		in.LinkCapacity = 1000
	}
}

// RecommendParams picks the smallest (k, d) meeting the privacy targets:
// k so that the k-anonymity floor 1/⌈k·(1−f)⌉ stays at or below
// TargetFloor even in a minimum-size group, and d so the diffusion ball
// reaches CoverFraction·N nodes on a Degree-regular overlay. It mirrors
// the paper's guidance that k is "typically a value between four and
// ten" and d is "chosen based on the network diameter".
func RecommendParams(in AdvisorInput) (*Recommendation, error) {
	in.applyDefaults()
	if in.TargetFloor <= 0 || in.TargetFloor >= 1 {
		return nil, errors.New("flexnet: TargetFloor must be in (0,1)")
	}
	if in.AdversaryFraction < 0 || in.AdversaryFraction >= 1 {
		return nil, errors.New("flexnet: AdversaryFraction must be in [0,1)")
	}
	if in.LossRate < 0 || in.LossRate >= 1 {
		return nil, errors.New("flexnet: LossRate must be in [0,1)")
	}
	if in.SustainedRate < 0 {
		return nil, errors.New("flexnet: SustainedRate must be >= 0")
	}
	rho := 0.0
	if in.SustainedRate > 0 {
		rho = in.SustainedRate / in.LinkCapacity
		if rho >= 1 {
			return nil, errors.New("flexnet: SustainedRate at or above LinkCapacity; no stable plan exists")
		}
	}

	// Smallest k with 1/ceil(k(1−f)) ≤ target.
	k := 2
	for ; k <= in.N; k++ {
		honest := int(math.Ceil(float64(k) * (1 - in.AdversaryFraction)))
		if honest > 0 && 1/float64(honest) <= in.TargetFloor {
			break
		}
	}

	// Loss thins the effective overlay: each diffusion edge only
	// carries its message with probability 1−loss, so the ball grows on
	// an effective degree of Degree·(1−loss) (never below the line
	// graph's 2) and each hop costs 1/(1−loss) expected transmissions.
	// Utilization composes with loss on both axes: queueing inflates
	// every hop by 1/(1−ρ), and past 50% utilization the usable fanout
	// shrinks linearly — below that links absorb the forwarding burst
	// with headroom to spare, so moderate load costs latency only.
	congest := 1.0
	if rho > 0.5 {
		congest = 2 * (1 - rho)
	}
	effDeg := max(int(float64(in.Degree)*(1-in.LossRate)*congest), 2)
	retx := 1 / (1 - in.LossRate) / (1 - rho)

	// Smallest d whose effective-degree tree ball reaches the cover
	// target.
	target := int(in.CoverFraction * float64(in.N))
	d := 1
	for ; d < 64; d++ {
		if ballSizeOn(effDeg, d) >= target {
			break
		}
	}

	honest := int(math.Ceil(float64(k) * (1 - in.AdversaryFraction)))
	hop := time.Duration(float64(in.LatencyMs) * retx * float64(time.Millisecond))
	// Submission waits ~1.5 DC rounds (announce + data), then d
	// diffusion rounds, then a flood across the remaining diameter
	// (≈ log_{deg−1} N hops on an expander) at the loss-degraded
	// per-hop cost.
	floodHops := int(math.Ceil(math.Log(float64(in.N)) / math.Log(float64(max(effDeg-1, 2)))))
	latency := in.DCInterval*3/2 +
		time.Duration(d)*in.ADInterval +
		time.Duration(floodHops)*hop

	return &Recommendation{
		K:                           k,
		D:                           d,
		PredictedFloor:              1 / float64(honest),
		PredictedBallSize:           ballSizeOn(effDeg, d),
		PredictedLatency:            latency,
		PredictedPhase1MsgsPerRound: 3 * k * (k - 1),
		PredictedUtilization:        rho,
	}, nil
}

// ballSizeOn is the d-regular-tree ball size (non-centre nodes) used by
// the advisor; mirrors adaptive.BallSize without exporting internals.
func ballSizeOn(deg, rho int) int {
	if rho <= 0 {
		return 0
	}
	if deg <= 2 {
		return 2 * rho
	}
	total, width := 0, deg
	for j := 1; j <= rho; j++ {
		total += width
		width *= deg - 1
	}
	return total
}
