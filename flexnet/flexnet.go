// Package flexnet is the public API of this repository: a Go
// implementation of "A Flexible Network Approach to Privacy of Blockchain
// Transactions" (Mödinger, Kopp, Kargl, Hauck — ICDCS 2018).
//
// The library provides the paper's three-phase privacy-preserving
// broadcast — a DC-net group phase (cryptographic k-anonymity), an
// adaptive-diffusion phase (statistical obfuscation), and a
// flood-and-prune phase (guaranteed delivery) — together with the
// baselines it is evaluated against (plain flooding, Dandelion, adaptive
// diffusion alone), a deterministic network simulator, an adversary
// toolkit, and a runnable TCP blockchain node.
//
// Two entry points cover the two ways to use it:
//
//   - Simulate runs one broadcast on a simulated overlay and reports
//     cost, coverage and (optionally) deanonymization outcomes — the
//     building block of every experiment in EXPERIMENTS.md.
//   - StartNode launches a real node over TCP: privacy broadcast for
//     transactions, plain flood for blocks, mempool and toy-PoW miner.
package flexnet

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/adaptive"
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/dandelion"
	"repro/internal/dcnet"
	"repro/internal/flood"
	"repro/internal/group"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Protocol selects the broadcast protocol under test.
type Protocol int

// Supported protocols.
const (
	// ProtocolFlood is plain flood-and-prune (no privacy).
	ProtocolFlood Protocol = iota + 1
	// ProtocolDandelion is the stem/fluff baseline of §III-A.
	ProtocolDandelion
	// ProtocolAdaptive is adaptive diffusion alone (no delivery
	// guarantee, §III-A).
	ProtocolAdaptive
	// ProtocolFlexnet is the paper's three-phase protocol (§IV).
	ProtocolFlexnet
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtocolFlood:
		return "flood"
	case ProtocolDandelion:
		return "dandelion"
	case ProtocolAdaptive:
		return "adaptive"
	case ProtocolFlexnet:
		return "flexnet"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Topology selects the overlay family for Simulate.
type Topology int

// Supported topologies.
const (
	// TopologyRandomRegular is a random d-regular overlay (the paper's
	// simulation substrate).
	TopologyRandomRegular Topology = iota + 1
	// TopologyRing is a cycle.
	TopologyRing
	// TopologyLine is a path.
	TopologyLine
	// TopologySmallWorld is Watts–Strogatz with β = 0.2.
	TopologySmallWorld
	// TopologyScaleFree is Barabási–Albert.
	TopologyScaleFree
)

// SimConfig parametrizes one simulated broadcast.
type SimConfig struct {
	// N is the node count (default 1000, the paper's setting).
	N int
	// Degree is the overlay degree (default 8, matching the paper's
	// 7,000-message flood baseline).
	Degree int
	// Topology defaults to TopologyRandomRegular.
	Topology Topology
	// Protocol defaults to ProtocolFlexnet.
	Protocol Protocol
	// K is the anonymity parameter (default 5).
	K int
	// D is the number of adaptive-diffusion rounds (default 4). Both K
	// and D only apply to ProtocolFlexnet / ProtocolAdaptive.
	D int
	// Q is Dandelion's fluff probability (default 0.1).
	Q float64
	// Seed drives all randomness (topology uses Seed+1).
	Seed uint64
	// Payload is the broadcast content (default 250 random bytes, a
	// typical transaction size).
	Payload []byte
	// AdversaryFraction corrupts this fraction of nodes as passive
	// observers (0 disables the attack analysis).
	AdversaryFraction float64
	// LatencyMs is the constant per-hop latency (default 50 ms).
	LatencyMs int
	// MaxDuration bounds virtual time (default 10 min).
	MaxDuration time.Duration
}

func (c *SimConfig) applyDefaults() {
	if c.N == 0 {
		c.N = 1000
	}
	if c.Degree == 0 {
		c.Degree = 8
	}
	if c.Topology == 0 {
		c.Topology = TopologyRandomRegular
	}
	if c.Protocol == 0 {
		c.Protocol = ProtocolFlexnet
	}
	if c.K == 0 {
		c.K = 5
	}
	if c.D == 0 {
		c.D = 4
	}
	if c.Q == 0 {
		c.Q = 0.1
	}
	if c.LatencyMs == 0 {
		c.LatencyMs = 50
	}
	if c.MaxDuration == 0 {
		c.MaxDuration = 10 * time.Minute
	}
}

// SimResult reports one simulated broadcast.
type SimResult struct {
	// N is the network size; Delivered the number of nodes that received
	// the payload.
	N, Delivered int
	// Originator is the true source; GroupSize its DC-net group size
	// (flexnet only).
	Originator int32
	GroupSize  int
	// TotalMessages counts every protocol message sent; PhaseMessages
	// breaks them down by protocol family name.
	TotalMessages int64
	PhaseMessages map[string]int64
	// TimeToCoverage is the virtual time until the last delivery.
	TimeToCoverage time.Duration
	// Adversary outcomes (when AdversaryFraction > 0): FirstSpy point
	// estimate, whether it hit, and the k-anonymity suspect-set size the
	// group attack achieves against flexnet (0 otherwise).
	FirstSpySuspect int32
	FirstSpyCorrect bool
	GroupSuspectSet int
	GroupAttackHit  bool
}

// Simulate runs one broadcast and reports the outcome.
func Simulate(cfg SimConfig) (*SimResult, error) {
	cfg.applyDefaults()
	topoRNG := rand.New(rand.NewPCG(cfg.Seed+1, 0x51ed2701))
	g, err := buildTopology(cfg, topoRNG)
	if err != nil {
		return nil, err
	}
	if !g.Connected() {
		return nil, errors.New("flexnet: generated topology is disconnected; change Seed")
	}

	runRNG := rand.New(rand.NewPCG(cfg.Seed, 0xabcdef12))
	payload := cfg.Payload
	if payload == nil {
		payload = make([]byte, 250)
		for i := range payload {
			payload[i] = byte(runRNG.Uint32())
		}
	}

	// Adversary.
	var obs *adversary.Observer
	if cfg.AdversaryFraction > 0 {
		corrupted := adversary.SampleCorrupted(cfg.N, cfg.AdversaryFraction, runRNG)
		obs = adversary.NewObserver(corrupted)
	}

	// Originator: an honest node.
	origin := proto.NodeID(runRNG.IntN(cfg.N))
	for obs != nil && obs.Corrupted(origin) {
		origin = proto.NodeID(runRNG.IntN(cfg.N))
	}

	// Group placement for flexnet: a directory partition over all nodes;
	// the originator's group drives Phase 1.
	var members []proto.NodeID
	if cfg.Protocol == ProtocolFlexnet {
		dir, err := group.NewDirectory(cfg.K)
		if err != nil {
			return nil, fmt.Errorf("flexnet: %w", err)
		}
		order := runRNG.Perm(cfg.N)
		for _, v := range order {
			if err := dir.Join(proto.NodeID(v), runRNG); err != nil {
				return nil, fmt.Errorf("flexnet: %w", err)
			}
		}
		gids := dir.GroupsOf(origin)
		if len(gids) == 0 {
			return nil, errors.New("flexnet: originator not placed in a group (N < K?)")
		}
		members = dir.Group(gids[0]).Members
	}

	net := sim.NewNetwork(g, sim.Options{
		Seed:    cfg.Seed,
		Latency: sim.ConstLatency(time.Duration(cfg.LatencyMs) * time.Millisecond),
	})
	if obs != nil {
		net.AddTap(obs)
	}

	hashes := core.SimHashes(cfg.N)
	inGroup := make(map[proto.NodeID]bool, len(members))
	for _, m := range members {
		inGroup[m] = true
	}
	net.SetHandlers(func(id proto.NodeID) proto.Handler {
		switch cfg.Protocol {
		case ProtocolFlood:
			return flood.New()
		case ProtocolDandelion:
			return dandelion.New(dandelion.Config{Q: cfg.Q, FailSafe: 30 * time.Second})
		case ProtocolAdaptive:
			return adaptive.New(adaptive.Config{D: cfg.D, RoundInterval: 500 * time.Millisecond, TreeDegree: cfg.Degree})
		default:
			c := core.Config{
				K: cfg.K, D: cfg.D,
				Hashes:     hashes,
				DCMode:     dcnet.ModeFixed,
				DCSlotSize: len(payload) + dcnet.SlotOverhead,
				DCInterval: 2 * time.Second,
				DCPolicy:   dcnet.PolicyNone,
				ADInterval: 500 * time.Millisecond,
				TreeDegree: cfg.Degree,
			}
			if inGroup[id] {
				c.Group = members
			}
			p, err := core.New(c)
			if err != nil {
				panic(fmt.Sprintf("flexnet: building node %d: %v", id, err))
			}
			return p
		}
	})
	net.Start()
	id, err := net.Originate(origin, payload)
	if err != nil {
		return nil, fmt.Errorf("flexnet: %w", err)
	}
	// Run until coverage stalls or completes, so periodic Phase-1 rounds
	// after the broadcast do not inflate the per-broadcast cost.
	runUntilSettled(net, id, cfg.N, cfg.MaxDuration)

	res := &SimResult{
		N:             cfg.N,
		Delivered:     net.Delivered(id),
		Originator:    int32(origin),
		GroupSize:     len(members),
		TotalMessages: net.TotalMessages(),
		PhaseMessages: map[string]int64{
			"dcnet": net.MessagesOfType(dcnet.TypeShare) + net.MessagesOfType(dcnet.TypeSPartial) +
				net.MessagesOfType(dcnet.TypeTPartial) + net.MessagesOfType(dcnet.TypeCommit),
			"adaptive": net.MessagesOfType(adaptive.TypeInfect) + net.MessagesOfType(adaptive.TypeExtend) +
				net.MessagesOfType(adaptive.TypeToken) + net.MessagesOfType(adaptive.TypeFinal),
			"flood": net.MessagesOfType(flood.TypeData),
			"stem":  net.MessagesOfType(dandelion.TypeStem),
		},
	}
	for _, at := range net.Deliveries(id).All() {
		if at > res.TimeToCoverage {
			res.TimeToCoverage = at
		}
	}

	if obs != nil {
		observations := obs.Observations(id)
		suspect := adversary.FirstSpy(observations)
		res.FirstSpySuspect = int32(suspect)
		res.FirstSpyCorrect = suspect == origin
		if cfg.Protocol == ProtocolFlexnet {
			// Group attack: worst case, the adversary knows the group
			// composition; honest members form the suspect set.
			honest := make([]proto.NodeID, 0, len(members))
			for _, m := range members {
				if !obs.Corrupted(m) {
					honest = append(honest, m)
				}
			}
			res.GroupSuspectSet = len(honest)
			for _, m := range honest {
				if m == origin {
					res.GroupAttackHit = true
				}
			}
		}
	}
	return res, nil
}

// runUntilSettled advances the simulation in steps until the broadcast
// reaches every node, coverage stops growing for a grace window, or the
// deadline passes.
func runUntilSettled(net *sim.Network, id proto.MsgID, n int, deadline time.Duration) {
	const step = 500 * time.Millisecond
	grace := 0
	last := 0
	for net.Now() < deadline {
		net.RunUntil(net.Now() + step)
		cur := net.Delivered(id)
		if cur >= n {
			return
		}
		if cur == last {
			grace++
			// Adaptive-only runs legitimately stall after the final
			// round; DC-net phases can idle for a couple of rounds
			// before the announcement lands, so wait generously.
			if grace > 20 {
				return
			}
		} else {
			grace = 0
			last = cur
		}
	}
}

// SimulateWithDeliveryTimes runs one broadcast like Simulate and returns
// each node's first-delivery time (virtual time since origination). The
// experiment harness uses these profiles for the miner-fairness lottery
// (E10).
func SimulateWithDeliveryTimes(cfg SimConfig) (map[int32]time.Duration, error) {
	cfg.applyDefaults()
	topoRNG := rand.New(rand.NewPCG(cfg.Seed+1, 0x51ed2701))
	g, err := buildTopology(cfg, topoRNG)
	if err != nil {
		return nil, err
	}
	runRNG := rand.New(rand.NewPCG(cfg.Seed, 0xabcdef12))
	payload := cfg.Payload
	if payload == nil {
		payload = make([]byte, 250)
		for i := range payload {
			payload[i] = byte(runRNG.Uint32())
		}
	}
	origin := proto.NodeID(runRNG.IntN(cfg.N))

	var members []proto.NodeID
	if cfg.Protocol == ProtocolFlexnet {
		dir, err := group.NewDirectory(cfg.K)
		if err != nil {
			return nil, err
		}
		for _, v := range runRNG.Perm(cfg.N) {
			if err := dir.Join(proto.NodeID(v), runRNG); err != nil {
				return nil, err
			}
		}
		gids := dir.GroupsOf(origin)
		if len(gids) == 0 {
			return nil, errors.New("flexnet: originator not placed")
		}
		members = dir.Group(gids[0]).Members
	}

	net := sim.NewNetwork(g, sim.Options{
		Seed:    cfg.Seed,
		Latency: sim.ConstLatency(time.Duration(cfg.LatencyMs) * time.Millisecond),
	})
	hashes := core.SimHashes(cfg.N)
	inGroup := make(map[proto.NodeID]bool, len(members))
	for _, m := range members {
		inGroup[m] = true
	}
	net.SetHandlers(func(id proto.NodeID) proto.Handler {
		switch cfg.Protocol {
		case ProtocolFlood:
			return flood.New()
		case ProtocolDandelion:
			return dandelion.New(dandelion.Config{Q: cfg.Q, FailSafe: 30 * time.Second})
		case ProtocolAdaptive:
			return adaptive.New(adaptive.Config{D: cfg.D, RoundInterval: 500 * time.Millisecond, TreeDegree: cfg.Degree})
		default:
			c := core.Config{
				K: cfg.K, D: cfg.D, Hashes: hashes,
				DCMode: dcnet.ModeFixed, DCSlotSize: len(payload) + dcnet.SlotOverhead,
				DCInterval: 2 * time.Second, DCPolicy: dcnet.PolicyNone,
				ADInterval: 500 * time.Millisecond, TreeDegree: cfg.Degree,
			}
			if inGroup[id] {
				c.Group = members
			}
			p, err := core.New(c)
			if err != nil {
				panic(err)
			}
			return p
		}
	})
	net.Start()
	id, err := net.Originate(origin, payload)
	if err != nil {
		return nil, err
	}
	runUntilSettled(net, id, cfg.N, cfg.MaxDuration)

	out := make(map[int32]time.Duration, cfg.N)
	for nodeID, at := range net.Deliveries(id).All() {
		out[int32(nodeID)] = at
	}
	return out, nil
}

func buildTopology(cfg SimConfig, rng *rand.Rand) (*topology.Graph, error) {
	switch cfg.Topology {
	case TopologyRandomRegular:
		return topology.RandomRegular(cfg.N, cfg.Degree, rng)
	case TopologyRing:
		return topology.Ring(cfg.N)
	case TopologyLine:
		return topology.Line(cfg.N)
	case TopologySmallWorld:
		return topology.WattsStrogatz(cfg.N, cfg.Degree, 0.2, rng)
	case TopologyScaleFree:
		return topology.BarabasiAlbert(cfg.N, cfg.Degree/2+1, rng)
	default:
		return nil, fmt.Errorf("flexnet: unknown topology %d", cfg.Topology)
	}
}
