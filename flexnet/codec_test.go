package flexnet

import (
	"reflect"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/dandelion"
	"repro/internal/dcnet"
	"repro/internal/flood"
	"repro/internal/group"
	"repro/internal/node"
	"repro/internal/proto"
	"repro/internal/wire"
)

// TestEveryMessageRoundTripsThroughCodec marshals and unmarshals one
// populated sample of every message type a node can put on the wire and
// requires structural equality — the cheap end-to-end check that no
// EncodeTo/DecodeFrom pair is asymmetric.
func TestEveryMessageRoundTripsThroughCodec(t *testing.T) {
	codec := NewCodec()
	id := proto.NewMsgID([]byte("sample"))

	samples := []wire.Encodable{
		&flood.DataMsg{ID: id, Hops: 3, Payload: []byte("payload")},
		&adaptive.InfectMsg{ID: id, TTL: 2, Round: 7, Payload: []byte("x")},
		&adaptive.ExtendMsg{ID: id, Depth: 2, Round: 9},
		&adaptive.TokenMsg{ID: id, Round: 4, H: 2},
		&adaptive.FinalMsg{ID: id, Round: 5},
		&dcnet.ShareMsg{Round: 12, Data: []byte{1, 2, 3, 4}},
		&dcnet.SPartialMsg{Round: 12, Data: []byte{5, 6}},
		&dcnet.TPartialMsg{Round: 12, Data: []byte{7}},
		&dcnet.CommitMsg{Round: 12, Digests: [][32]byte{{1}, {2}}},
		&dcnet.RevealMsg{Round: 12, Shares: [][]byte{{1}, {2, 3}}, Salts: [][]byte{{9}, {8}}},
		&dandelion.StemMsg{ID: id, Payload: []byte("stem")},
		&group.JoinReq{},
		&group.LeaveReq{},
		&group.ViewUpdate{View: 3, Group: 2, Members: []proto.NodeID{1, 5, 9}},
		&group.ViewAck{View: 3},
		&group.ViewCommit{View: 3, Group: 2, Members: []proto.NodeID{1, 5}},
		&node.BlockMsg{Height: 8, Miner: 4, TimeNano: 123, PowNonce: 99,
			Txs: [][]byte{{1, 2}, {3}}, Parent: [32]byte{0xaa}},
	}
	for _, msg := range samples {
		b, err := codec.Marshal(msg)
		if err != nil {
			t.Errorf("Marshal(%T): %v", msg, err)
			continue
		}
		back, err := codec.Unmarshal(b)
		if err != nil {
			t.Errorf("Unmarshal(%T): %v", msg, err)
			continue
		}
		if !reflect.DeepEqual(normalize(msg), normalize(back)) {
			t.Errorf("%T round trip mismatch:\n in: %#v\nout: %#v", msg, msg, back)
		}
	}
}

// normalize maps nil and empty slices to a canonical form so DeepEqual
// compares structure, not allocation details.
func normalize(m wire.Encodable) any {
	v := reflect.ValueOf(m).Elem()
	out := reflect.New(v.Type()).Elem()
	out.Set(v)
	normalizeValue(out)
	return out.Interface()
}

func normalizeValue(v reflect.Value) {
	switch v.Kind() {
	case reflect.Slice:
		if v.Len() == 0 && !v.IsNil() {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		for i := 0; i < v.Len(); i++ {
			normalizeValue(v.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).CanSet() {
				normalizeValue(v.Field(i))
			}
		}
	}
}
