package flexnet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/dcnet"
	"repro/internal/group"
	"repro/internal/node"
	"repro/internal/proto"
	"repro/internal/relchan"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"

	"repro/internal/adaptive"
	"repro/internal/dandelion"
	"repro/internal/flood"
)

// NodeConfig parametrizes a real TCP node.
type NodeConfig struct {
	// ID is the node's overlay identifier; it must be unique.
	ID int32
	// Listen is the TCP listen address (e.g. "127.0.0.1:7001").
	Listen string
	// AddrBook maps node IDs to addresses for every reachable node
	// (overlay neighbors and DC-net group members).
	AddrBook map[int32]string
	// Neighbors is the overlay adjacency used by Phases 2–3.
	Neighbors []int32
	// Group is the node's DC-net group including itself (empty: relay
	// only).
	Group []int32
	// IdentitySeeds maps group members to 32-byte identity seeds, used
	// to derive the identity hashes for virtual-source selection. All
	// group members must agree on this map.
	IdentitySeeds map[int32][32]byte
	// K and D are the protocol parameters (defaults 5 and 4).
	K, D int
	// DCInterval is the Phase-1 round interval (default 2 s).
	DCInterval time.Duration
	// FailSafe, when positive, arms the coverage-first recovery flood:
	// a payload not fully flooded within this deadline is re-flooded
	// from every holder. Zero keeps the paper's strict mode.
	FailSafe time.Duration
	// Mine enables the toy proof-of-work miner.
	Mine bool
	// DifficultyBits is the PoW difficulty (default 16).
	DifficultyBits int
	// Seed seeds protocol randomness.
	Seed uint64
	// OnBlock fires on every accepted block.
	OnBlock func(height uint64, txs int, miner int32)
	// OnTx fires when a broadcast transaction reaches this node.
	OnTx func(id [16]byte, fee uint64, payload []byte)
	// Admission mounts the workload mempool-admission layer in front of
	// the protocol launch: submissions are deduplicated, queued up to
	// AdmissionConfig.QueueCap and paced by SubmitService. Nil keeps the
	// classic direct-launch path.
	Admission *workload.AdmissionConfig
	// SubmitService is the pacing interval between queued launches when
	// Admission is mounted (0: drain immediately).
	SubmitService time.Duration
}

// Node is a running TCP blockchain node with privacy-preserving
// transaction broadcast.
type Node struct {
	inner *node.Node
	trans *transport.Node

	mu      sync.Mutex
	statsTx int
}

// NewCodec returns a codec with every protocol message registered — the
// full wire surface of a node.
func NewCodec() *wire.Codec {
	c := wire.NewCodec()
	flood.RegisterMessages(c)
	adaptive.RegisterMessages(c)
	dcnet.RegisterMessages(c)
	dandelion.RegisterMessages(c)
	relchan.RegisterMessages(c)
	group.RegisterMessages(c)
	node.RegisterMessages(c)
	workload.RegisterMessages(c)
	return c
}

// StartNode launches a node: it listens immediately and starts its
// protocol loops.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.K == 0 {
		cfg.K = 5
	}
	if cfg.D == 0 {
		cfg.D = 4
	}
	if cfg.DCInterval <= 0 {
		cfg.DCInterval = 2 * time.Second
	}
	if cfg.DifficultyBits == 0 {
		cfg.DifficultyBits = 16
	}

	hashes := make(map[proto.NodeID][32]byte, len(cfg.IdentitySeeds))
	for id, seed := range cfg.IdentitySeeds {
		hashes[proto.NodeID(id)] = crypto.IdentityFromSeed(seed).Hash()
	}
	groupIDs := make([]proto.NodeID, 0, len(cfg.Group))
	for _, m := range cfg.Group {
		groupIDs = append(groupIDs, proto.NodeID(m))
	}

	n := &Node{}
	inner, err := node.New(node.Config{
		Core: core.Config{
			K: cfg.K, D: cfg.D,
			Group:      groupIDs,
			Hashes:     hashes,
			DCInterval: cfg.DCInterval,
			DCMode:     dcnet.ModeAnnounce,
			DCPolicy:   dcnet.PolicyDissolve,
			FailSafe:   cfg.FailSafe,
		},
		Mine:           cfg.Mine,
		DifficultyBits: cfg.DifficultyBits,
		Admission:      cfg.Admission,
		SubmitService:  cfg.SubmitService,
		OnBlock: func(b *chain.Block) {
			if cfg.OnBlock != nil {
				cfg.OnBlock(b.Height, len(b.Txs), int32(b.Miner))
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("flexnet: %w", err)
	}
	n.inner = inner

	addrBook := make(map[proto.NodeID]string, len(cfg.AddrBook))
	for id, addr := range cfg.AddrBook {
		addrBook[proto.NodeID(id)] = addr
	}
	neighbors := make([]proto.NodeID, 0, len(cfg.Neighbors))
	for _, nb := range cfg.Neighbors {
		neighbors = append(neighbors, proto.NodeID(nb))
	}

	trans, err := transport.Listen(transport.Config{
		Self:      proto.NodeID(cfg.ID),
		Listen:    cfg.Listen,
		AddrBook:  addrBook,
		Neighbors: neighbors,
		Codec:     NewCodec(),
		Handler:   inner,
		Seed:      cfg.Seed,
		OnDeliver: func(id proto.MsgID, payload []byte) {
			inner.OnDeliver(payload)
			if cfg.OnTx != nil {
				if tx, err := chain.DecodeTx(payload); err == nil {
					cfg.OnTx([16]byte(tx.ID()), tx.Fee, tx.Payload)
				}
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("flexnet: %w", err)
	}
	n.trans = trans
	return n, nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.trans.Addr() }

// SetAddr registers or updates a peer's address after startup — the
// late-binding hook used when nodes listen on OS-assigned ports.
func (n *Node) SetAddr(id int32, addr string) { n.trans.SetAddr(proto.NodeID(id), addr) }

// SubmitTx broadcasts a transaction anonymously through the three-phase
// protocol. The node must belong to a DC-net group.
func (n *Node) SubmitTx(payload []byte, fee uint64) error {
	errCh := make(chan error, 1)
	n.trans.Inject(func(ctx proto.Context) {
		_, err := n.inner.SubmitTx(ctx, payload, fee)
		errCh <- err
	})
	select {
	case err := <-errCh:
		return err
	case <-time.After(5 * time.Second):
		return fmt.Errorf("flexnet: SubmitTx timed out")
	}
}

// AdmissionStats returns the admission-layer counters (zero when
// NodeConfig.Admission was nil). Like MempoolSize, it is a snapshot
// taken on the event loop.
func (n *Node) AdmissionStats() workload.Stats {
	ch := make(chan workload.Stats, 1)
	n.trans.Inject(func(proto.Context) {
		p := n.inner.Probe()
		ch <- workload.Stats{Admitted: p.Admitted, Deduped: p.Deduped,
			Dropped: p.Dropped, PeakQueueDepth: p.PeakQueueDepth}
	})
	select {
	case st := <-ch:
		return st
	case <-time.After(5 * time.Second):
		return workload.Stats{}
	}
}

// SubmitRawTx broadcasts an already-encoded transaction through the
// three-phase protocol — the deterministic-identity form of SubmitTx:
// the caller controls the nonce, so resubmitting the same encoding at
// any node is a true duplicate that the admission layer deduplicates.
func (n *Node) SubmitRawTx(encoded []byte) error {
	errCh := make(chan error, 1)
	n.trans.Inject(func(ctx proto.Context) {
		_, err := n.inner.Broadcast(ctx, encoded)
		errCh <- err
	})
	select {
	case err := <-errCh:
		return err
	case <-time.After(5 * time.Second):
		return fmt.Errorf("flexnet: SubmitRawTx timed out")
	}
}

// MempoolSize returns the current mempool size. It is approximate: the
// mempool is owned by the event loop.
func (n *Node) MempoolSize() int {
	sizeCh := make(chan int, 1)
	n.trans.Inject(func(proto.Context) { sizeCh <- n.inner.Mempool().Len() })
	select {
	case s := <-sizeCh:
		return s
	case <-time.After(5 * time.Second):
		return -1
	}
}

// ChainHeight returns the node's main-chain height.
func (n *Node) ChainHeight() uint64 {
	hCh := make(chan uint64, 1)
	n.trans.Inject(func(proto.Context) { hCh <- n.inner.Chain().Height() })
	select {
	case h := <-hCh:
		return h
	case <-time.After(5 * time.Second):
		return 0
	}
}

// Close shuts the node down.
func (n *Node) Close() error { return n.trans.Close() }
