package flexnet

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/workload"
)

// ClusterSoakConfig describes a sustained-load run over a real local TCP
// cluster: N in-process nodes on OS-assigned localhost ports, the first
// GroupSize forming one DC-net group, driven by the same deterministic
// workload generator the simulator's soak harness uses — but over actual
// sockets and wall-clock time.
type ClusterSoakConfig struct {
	// N is the cluster size (default 8).
	N int
	// GroupSize is the DC-net group size (default 5); the group is
	// nodes 0..GroupSize−1 and every submission originates there,
	// because only group members can launch Phase 1.
	GroupSize int
	// D is the adaptive-diffusion depth (default 2).
	D int
	// DCInterval is the Phase-1 cadence (default 300 ms — soak runs
	// want short rounds).
	DCInterval time.Duration
	// Spec is the arrival process (default 10 tx/s Poisson).
	Spec workload.Spec
	// Duration is the injection window (default 2 s); the run then
	// waits Drain (default 15 s) for in-flight traffic.
	Duration, Drain time.Duration
	// Seed seeds the arrival schedule and node randomness.
	Seed uint64
	// Admission, when non-nil, mounts the mempool-admission layer on
	// every node (dedup + bounded queue); SubmitService paces launches.
	Admission     *workload.AdmissionConfig
	SubmitService time.Duration
	// OnProgress, when set, receives one line per second of the run.
	OnProgress func(line string)
}

func (c *ClusterSoakConfig) withDefaults() {
	if c.N == 0 {
		c.N = 8
	}
	if c.GroupSize == 0 {
		c.GroupSize = min(5, c.N)
	}
	if c.D == 0 {
		c.D = 2
	}
	if c.DCInterval == 0 {
		c.DCInterval = 300 * time.Millisecond
	}
	if c.Spec.Rate == 0 && len(c.Spec.Trace) == 0 {
		c.Spec.Rate = 10
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Drain == 0 {
		c.Drain = 15 * time.Second
	}
}

// ClusterSoakReport is the outcome of one SoakCluster run.
type ClusterSoakReport struct {
	// Submitted counts schedule arrivals offered; Unique excludes the
	// resubmit stream.
	Submitted, Unique int
	// Delivered counts (transaction, node) deliveries; Coverage is
	// Delivered / (Unique × N).
	Delivered int64
	Coverage  float64
	// Latency is the submission→delivery sketch over every delivery,
	// wall-clock, queueing included.
	Latency *metrics.LatencySketch
	// Admission aggregates the per-node admission counters.
	Admission workload.Stats
	// Frames is the total TCP frames sent cluster-wide; the per-node
	// per-second rate is the bandwidth side of the report.
	Frames            int64
	MsgsPerNodePerSec float64
	// TxPerSec is the achieved unique-transaction throughput over the
	// injection window.
	TxPerSec float64
	// Wall is the total run time.
	Wall time.Duration
}

// P50 returns the median submission→delivery latency.
func (r *ClusterSoakReport) P50() time.Duration { return r.Latency.Quantile(0.50) }

// P95 returns the 95th-percentile latency.
func (r *ClusterSoakReport) P95() time.Duration { return r.Latency.Quantile(0.95) }

// P99 returns the 99th-percentile latency.
func (r *ClusterSoakReport) P99() time.Duration { return r.Latency.Quantile(0.99) }

// SoakCluster stands up the cluster, streams the workload schedule into
// the group members at its wall-clock arrival times, waits for the
// drain, and reports throughput, latency quantiles and admission
// counters. The schedule is deterministic in cfg.Seed; delivery timing
// is real-network wall clock, so latency numbers vary run to run.
func SoakCluster(cfg ClusterSoakConfig) (*ClusterSoakReport, error) {
	cfg.withDefaults()
	n := cfg.N

	seeds := make(map[int32][32]byte, cfg.GroupSize)
	var grp []int32
	for i := int32(0); i < int32(cfg.GroupSize); i++ {
		var s [32]byte
		binary.LittleEndian.PutUint32(s[:], uint32(i))
		copy(s[4:], "flexnet-soak")
		seeds[i] = s
		grp = append(grp, i)
	}
	// A connected overlay: ring plus seeded chords up to degree ~4.
	topoRNG := rand.New(rand.NewPCG(cfg.Seed, 0x50a6_c1a5))
	chord := func(i int32) int32 {
		return (i + 2 + int32(topoRNG.IntN(max(n-4, 1)))) % int32(n)
	}

	// Submission→delivery bookkeeping, keyed by payload (unique per
	// fresh arrival). A resubmission becomes a distinct transaction on
	// the wire (fresh nonce), so deliveries are deduplicated here per
	// (payload, node) — coverage counts first arrivals only.
	var mu sync.Mutex
	submitAt := make(map[string]time.Time)
	seen := make(map[string]*big.Int)
	sketch := new(metrics.LatencySketch)
	var delivered int64

	nodes := make([]*Node, n)
	addrs := make(map[int32]string, n)
	for i := int32(0); i < int32(n); i++ {
		self := i
		var nodeGroup []int32
		if int(i) < cfg.GroupSize {
			nodeGroup = grp
		}
		neighbors := []int32{(i + int32(n) - 1) % int32(n), (i + 1) % int32(n)}
		if n > 4 {
			neighbors = append(neighbors, chord(i))
		}
		nd, err := StartNode(NodeConfig{
			ID:            i,
			Listen:        "127.0.0.1:0",
			AddrBook:      map[int32]string{},
			Neighbors:     neighbors,
			Group:         nodeGroup,
			IdentitySeeds: seeds,
			K:             cfg.GroupSize,
			D:             cfg.D,
			DCInterval:    cfg.DCInterval,
			FailSafe:      4 * cfg.DCInterval,
			Seed:          cfg.Seed + uint64(i) + 1,
			Admission:     cfg.Admission,
			SubmitService: cfg.SubmitService,
			OnTx: func(_ [16]byte, _ uint64, payload []byte) {
				now := time.Now()
				mu.Lock()
				if at, ok := submitAt[string(payload)]; ok {
					bits := seen[string(payload)]
					if bits == nil {
						bits = new(big.Int)
						seen[string(payload)] = bits
					}
					if bits.Bit(int(self)) == 0 {
						bits.SetBit(bits, int(self), 1)
						sketch.Add(now.Sub(at))
						delivered++
					}
				}
				mu.Unlock()
			},
		})
		if err != nil {
			for _, prev := range nodes {
				if prev != nil {
					_ = prev.Close()
				}
			}
			return nil, fmt.Errorf("flexnet: soak node %d: %w", i, err)
		}
		nodes[i] = nd
		addrs[i] = nd.Addr()
	}
	defer func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	}()
	for _, nd := range nodes {
		for id, addr := range addrs {
			nd.SetAddr(id, addr)
		}
	}

	// Submissions must land on group members: map the schedule's
	// originator slots onto the group.
	originators := make([]proto.NodeID, cfg.GroupSize)
	for i := range originators {
		originators[i] = proto.NodeID(i)
	}
	sched := workload.Schedule(cfg.Spec, cfg.Seed, cfg.Duration, originators)

	start := time.Now()
	unique := 0
	for i := range sched {
		a := &sched[i]
		if wait := a.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		if a.Orig == a.Seq {
			unique++
			mu.Lock()
			submitAt[string(a.Payload)] = time.Now()
			mu.Unlock()
		}
		// A deterministic nonce makes a resubmission byte-identical to
		// the original, so the duplicate stream exercises admission
		// dedup over the wire exactly as it does in the simulator.
		tx := &chain.Tx{Nonce: uint64(a.Orig) + 1, Fee: 1, Payload: a.Payload}
		if err := nodes[a.Node].SubmitRawTx(tx.Encode()); err != nil {
			return nil, fmt.Errorf("flexnet: soak submit %d: %w", a.Seq, err)
		}
		if cfg.OnProgress != nil && i%64 == 63 {
			cfg.OnProgress(fmt.Sprintf("submitted %d/%d (%.1fs)", i+1, len(sched), time.Since(start).Seconds()))
		}
	}

	// Drain: poll until every unique transaction reached every node or
	// the drain budget runs out.
	deadline := time.Now().Add(cfg.Drain)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := delivered >= int64(unique*n)
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	rep := &ClusterSoakReport{
		Submitted: len(sched),
		Unique:    unique,
		Latency:   sketch,
		Wall:      time.Since(start),
	}
	mu.Lock()
	rep.Delivered = delivered
	mu.Unlock()
	if unique > 0 {
		rep.Coverage = float64(rep.Delivered) / float64(unique*n)
		rep.TxPerSec = float64(unique) / cfg.Duration.Seconds()
	}
	for _, nd := range nodes {
		st := nd.AdmissionStats()
		rep.Admission.Admitted += st.Admitted
		rep.Admission.Deduped += st.Deduped
		rep.Admission.Dropped += st.Dropped
		if st.PeakQueueDepth > rep.Admission.PeakQueueDepth {
			rep.Admission.PeakQueueDepth = st.PeakQueueDepth
		}
		tx, _ := nd.trans.FrameCounts()
		rep.Frames += tx
	}
	rep.MsgsPerNodePerSec = float64(rep.Frames) / float64(n) / rep.Wall.Seconds()
	return rep, nil
}
