package flexnet

import (
	"encoding/binary"
	"testing"
	"time"
)

func TestSimulateFlood(t *testing.T) {
	res, err := Simulate(SimConfig{N: 100, Degree: 8, Protocol: ProtocolFlood, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 100 {
		t.Errorf("Delivered = %d/100", res.Delivered)
	}
	// 2E − (N−1) = 800 − 99 = 701.
	if res.TotalMessages != 701 {
		t.Errorf("TotalMessages = %d, want 701", res.TotalMessages)
	}
	if res.PhaseMessages["flood"] != 701 {
		t.Errorf("flood messages = %d", res.PhaseMessages["flood"])
	}
	if res.TimeToCoverage == 0 {
		t.Error("no coverage time recorded")
	}
}

func TestSimulateDandelion(t *testing.T) {
	res, err := Simulate(SimConfig{N: 100, Degree: 8, Protocol: ProtocolDandelion, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 100 {
		t.Errorf("Delivered = %d/100", res.Delivered)
	}
	if res.PhaseMessages["stem"] == 0 {
		t.Error("no stem messages despite dandelion")
	}
}

func TestSimulateAdaptivePartialCoverage(t *testing.T) {
	res, err := Simulate(SimConfig{N: 200, Degree: 8, Protocol: ProtocolAdaptive, D: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.Delivered == 200 {
		t.Errorf("adaptive-only Delivered = %d, want partial coverage", res.Delivered)
	}
}

func TestSimulateFlexnetFullPipeline(t *testing.T) {
	res, err := Simulate(SimConfig{N: 150, Degree: 8, Protocol: ProtocolFlexnet, K: 4, D: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 150 {
		t.Errorf("Delivered = %d/150", res.Delivered)
	}
	if res.GroupSize < 4 || res.GroupSize > 7 {
		t.Errorf("GroupSize = %d, want within [4,7]", res.GroupSize)
	}
	for _, phase := range []string{"dcnet", "adaptive", "flood"} {
		if res.PhaseMessages[phase] == 0 {
			t.Errorf("no %s messages in flexnet run", phase)
		}
	}
}

func TestSimulateFlexnetGroupAttackFloor(t *testing.T) {
	// With an adversary, the group attack's suspect set must contain the
	// originator and have size ≥ 1 — the k-anonymity floor.
	hits := 0
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := Simulate(SimConfig{
			N: 100, Degree: 8, Protocol: ProtocolFlexnet,
			K: 5, D: 3, Seed: seed, AdversaryFraction: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.GroupSuspectSet == 0 {
			t.Error("empty suspect set")
		}
		if res.GroupAttackHit {
			hits++
			// Even when the set contains the truth, the adversary's
			// success probability is 1/set — the flexibility guarantee.
			if res.GroupSuspectSet < 2 {
				t.Errorf("anonymity set of %d leaves no protection", res.GroupSuspectSet)
			}
		}
	}
	if hits == 0 {
		t.Error("originator never in suspect set; group attack modeled wrong")
	}
}

func TestSimulateDeterminism(t *testing.T) {
	run := func() *SimResult {
		res, err := Simulate(SimConfig{N: 80, Degree: 6, Protocol: ProtocolFlexnet, K: 4, D: 3, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalMessages != b.TotalMessages || a.Originator != b.Originator || a.TimeToCoverage != b.TimeToCoverage {
		t.Errorf("non-deterministic Simulate: %+v vs %+v", a, b)
	}
}

func TestSimulateTopologies(t *testing.T) {
	for _, topo := range []Topology{TopologyRandomRegular, TopologyRing, TopologyLine, TopologySmallWorld, TopologyScaleFree} {
		res, err := Simulate(SimConfig{N: 60, Degree: 4, Topology: topo, Protocol: ProtocolFlood, Seed: 9})
		if err != nil {
			t.Fatalf("topology %d: %v", topo, err)
		}
		if res.Delivered != 60 {
			t.Errorf("topology %d: delivered %d/60", topo, res.Delivered)
		}
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		ProtocolFlood: "flood", ProtocolDandelion: "dandelion",
		ProtocolAdaptive: "adaptive", ProtocolFlexnet: "flexnet",
		Protocol(9): "Protocol(9)",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestStartNodeTCPCluster(t *testing.T) {
	// A 6-node localhost cluster: nodes 0–3 form the DC-net group; the
	// overlay is a ring. One anonymous transaction must reach every
	// node's mempool.
	const n = 6
	addrs := make(map[int32]string, n)
	seeds := make(map[int32][32]byte)
	for i := int32(0); i < 4; i++ {
		var s [32]byte
		binary.LittleEndian.PutUint32(s[:], uint32(i))
		seeds[i] = s
	}
	nodes := make([]*Node, n)
	// Listen on OS-assigned ports, then fill the shared address book.
	for i := int32(0); i < n; i++ {
		var grp []int32
		if i < 4 {
			grp = []int32{0, 1, 2, 3}
		}
		node, err := StartNode(NodeConfig{
			ID:            i,
			Listen:        "127.0.0.1:0",
			AddrBook:      addrs,
			Neighbors:     []int32{(i + n - 1) % n, (i + 1) % n},
			Group:         grp,
			IdentitySeeds: seeds,
			K:             4, D: 2,
			DCInterval: 150 * time.Millisecond,
			Seed:       uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		defer func() { _ = node.Close() }()
	}
	for i := int32(0); i < n; i++ {
		addrs[i] = nodes[i].Addr()
	}
	// Late-bind the address book (ports were OS-assigned).
	for _, node := range nodes {
		for id, addr := range addrs {
			node.SetAddr(id, addr)
		}
	}

	if err := nodes[1].SubmitTx([]byte("anonymous payment"), 42); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		all := true
		for i := 0; i < n; i++ {
			if nodes[i].MempoolSize() < 1 {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			sizes := make([]int, n)
			for i := range nodes {
				sizes[i] = nodes[i].MempoolSize()
			}
			t.Fatalf("tx did not reach all mempools: %v", sizes)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
